"""Core data model of the ``reprolint`` static-analysis engine.

The engine is deliberately dependency-free (stdlib ``ast`` only): it must
run in the leanest CI job, lint fixture trees that are not importable,
and never execute the code it checks.  This module defines the three
shared value types:

* :class:`Finding` — one diagnostic, anchored to a file position;
* :class:`ParsedFile` — a source file plus its AST and the suppression
  comments parsed out of it;
* :class:`Project` — the set of parsed files one lint run operates on
  (rules that check cross-file invariants, like cache-key completeness,
  see the whole project at once).

Suppression syntax (checked by :func:`ParsedFile.is_suppressed`):

* ``# reprolint: disable=R001`` — suppress the named rule(s) on this line;
* ``# reprolint: disable=R001,R004`` — several rules;
* ``# reprolint: disable=all`` — every rule on this line;
* ``# reprolint: disable-file=R001`` — suppress for the whole file.

A suppression comment should always carry a human justification on the
same line or the line above; the linter does not enforce that, review
does.
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, FrozenSet, Iterable, Iterator, List, Optional, Set, Tuple

#: Severity tiers, least severe first (index = rank).
SEVERITIES: Tuple[str, ...] = ("info", "warning", "error")

#: Pseudo-rule id used for files the engine cannot parse.
PARSE_ERROR_RULE = "R000"

#: The rule list stops at the first non-rule token so a same-line
#: justification (``# reprolint: disable=R001 - timing only``) is not
#: swallowed into the rule names.
_SUPPRESS_RE = re.compile(
    r"#\s*reprolint:\s*(disable|disable-file)\s*=\s*"
    r"([A-Za-z0-9_*]+(?:\s*,\s*[A-Za-z0-9_*]+)*)"
)

#: Marker excusing a config dataclass field from cache-key hashing (R002).
CACHE_EXEMPT_RE = re.compile(r"#\s*reprolint:\s*cache-exempt\b")


def _coerce_int(value: object) -> int:
    """Narrow a JSON-decoded value to int (bool is not a line number)."""
    if isinstance(value, bool) or not isinstance(value, int):
        raise TypeError(f"expected an integer, got {value!r}")
    return value


def severity_rank(severity: str) -> int:
    """Numeric rank of a severity name (higher = more severe)."""
    try:
        return SEVERITIES.index(severity)
    except ValueError:
        raise ValueError(
            f"unknown severity {severity!r}; expected one of {SEVERITIES}"
        ) from None


@dataclass(frozen=True, order=True)
class Finding:
    """One diagnostic produced by a rule.

    Order is (path, line, col, rule), which is also the report order.
    ``line`` is 1-based and ``col`` 0-based, matching ``ast`` node
    positions; renderers add 1 to the column for editor conventions.

    Cross-file findings (a flow rule anchoring at a call site whose
    root cause is a definition elsewhere) carry an ``origin``: the
    definition-site position.  A ``# reprolint: disable=`` comment on
    *either* the anchor line or the origin line suppresses the finding,
    so one justified comment at a definition silences every finding it
    induces across the tree.
    """

    path: str
    line: int
    col: int
    rule: str
    severity: str
    message: str
    origin_path: Optional[str] = None
    origin_line: Optional[int] = None

    def to_dict(self) -> Dict[str, object]:
        """JSON-serializable record of this finding."""
        record: Dict[str, object] = {
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "rule": self.rule,
            "severity": self.severity,
            "message": self.message,
        }
        if self.origin_path is not None:
            record["origin"] = {
                "path": self.origin_path,
                "line": self.origin_line,
            }
        return record

    @classmethod
    def from_dict(cls, record: Dict[str, object]) -> "Finding":
        """Inverse of :meth:`to_dict` (used by the incremental cache)."""
        origin = record.get("origin")
        origin_path: Optional[str] = None
        origin_line: Optional[int] = None
        if isinstance(origin, dict):
            origin_path = str(origin["path"])
            origin_line = _coerce_int(origin["line"])
        return cls(
            path=str(record["path"]),
            line=_coerce_int(record["line"]),
            col=_coerce_int(record["col"]),
            rule=str(record["rule"]),
            severity=str(record["severity"]),
            message=str(record["message"]),
            origin_path=origin_path,
            origin_line=origin_line,
        )

    def render(self) -> str:
        """One-line human rendering (1-based column)."""
        return (
            f"{self.path}:{self.line}:{self.col + 1}: "
            f"{self.rule} [{self.severity}] {self.message}"
        )


def _parse_rule_list(raw: str) -> FrozenSet[str]:
    names = [part.strip() for part in raw.replace(";", ",").split(",")]
    return frozenset(name for name in names if name)


@dataclass
class ParsedFile:
    """One successfully parsed source file."""

    path: Path
    display: str
    source: str
    tree: ast.Module
    line_suppressions: Dict[int, FrozenSet[str]] = field(default_factory=dict)
    file_suppressions: FrozenSet[str] = frozenset()

    @property
    def parts(self) -> Tuple[str, ...]:
        """Path components, used by rules that scope to subtrees."""
        return self.path.parts

    @property
    def lines(self) -> List[str]:
        return self.source.splitlines()

    def in_subtree(self, *names: str) -> bool:
        """True when any of ``names`` appears as a path component."""
        return any(name in self.parts for name in names)

    def is_suppressed(self, rule: str, line: int) -> bool:
        """True when ``rule`` is disabled on ``line`` or for the file."""
        if "all" in self.file_suppressions or rule in self.file_suppressions:
            return True
        on_line = self.line_suppressions.get(line)
        if on_line is None:
            return False
        return "all" in on_line or rule in on_line

    def finding(
        self,
        rule: str,
        severity: str,
        node: ast.AST,
        message: str,
        origin: Optional[Tuple["ParsedFile", ast.AST]] = None,
    ) -> Finding:
        """Build a finding anchored at ``node``'s position.

        ``origin`` optionally names the definition site (file, node) a
        cross-file finding traces back to; suppressions on that line
        also silence the finding.
        """
        line = int(getattr(node, "lineno", 1))
        col = int(getattr(node, "col_offset", 0))
        origin_path: Optional[str] = None
        origin_line: Optional[int] = None
        if origin is not None:
            origin_file, origin_node = origin
            origin_path = origin_file.display
            origin_line = int(getattr(origin_node, "lineno", 1))
        return Finding(
            path=self.display,
            line=line,
            col=col,
            rule=rule,
            severity=severity,
            message=message,
            origin_path=origin_path,
            origin_line=origin_line,
        )


def _collect_suppressions(
    source: str,
) -> Tuple[Dict[int, FrozenSet[str]], FrozenSet[str]]:
    per_line: Dict[int, FrozenSet[str]] = {}
    whole_file: FrozenSet[str] = frozenset()
    for number, text in enumerate(source.splitlines(), start=1):
        if "reprolint" not in text:
            continue
        match = _SUPPRESS_RE.search(text)
        if match is None:
            continue
        rules = _parse_rule_list(match.group(2))
        if match.group(1) == "disable-file":
            whole_file = whole_file | rules
        else:
            per_line[number] = per_line.get(number, frozenset()) | rules
    return per_line, whole_file


def parse_file(path: Path, display: str) -> Tuple[Optional[ParsedFile], Optional[Finding]]:
    """Parse one file; returns (parsed, None) or (None, parse-error finding)."""
    try:
        source = path.read_text(encoding="utf-8")
    except (OSError, UnicodeDecodeError) as error:
        return None, Finding(
            path=display,
            line=1,
            col=0,
            rule=PARSE_ERROR_RULE,
            severity="error",
            message=f"cannot read file: {error}",
        )
    try:
        tree = ast.parse(source, filename=str(path))
    except SyntaxError as error:
        return None, Finding(
            path=display,
            line=int(error.lineno or 1),
            col=int(error.offset or 1) - 1,
            rule=PARSE_ERROR_RULE,
            severity="error",
            message=f"syntax error: {error.msg}",
        )
    per_line, whole_file = _collect_suppressions(source)
    return (
        ParsedFile(
            path=path,
            display=display,
            source=source,
            tree=tree,
            line_suppressions=per_line,
            file_suppressions=whole_file,
        ),
        None,
    )


_SKIP_DIRS = frozenset({"__pycache__", ".git", ".hypothesis", ".pytest_cache"})


def display_for(path: Path) -> str:
    """The cwd-relative display string a path gets in reports.

    Shared by :meth:`Project.load`, the incremental cache (which keys
    per-file records by display), and ``--changed`` target narrowing,
    so all three agree on file identity.
    """
    try:
        return path.resolve().relative_to(Path.cwd()).as_posix()
    except ValueError:
        return path.as_posix()


def discover_sources(paths: Iterable[Path]) -> List[Path]:
    """Expand files/directories into a sorted list of ``.py`` files."""
    collected: List[Path] = []
    for path in paths:
        if path.is_dir():
            for candidate in sorted(path.rglob("*.py")):
                if not any(part in _SKIP_DIRS for part in candidate.parts):
                    collected.append(candidate)
        elif path.suffix == ".py":
            collected.append(path)
    unique: List[Path] = []
    seen_paths: Set[Path] = set()
    for path in collected:
        resolved = path.resolve()
        if resolved not in seen_paths:
            seen_paths.add(resolved)
            unique.append(path)
    return unique


@dataclass
class Project:
    """The unit a lint run operates on: parsed files + parse errors."""

    files: List[ParsedFile]
    errors: List[Finding]

    @classmethod
    def load(cls, paths: Iterable[Path]) -> "Project":
        """Parse every ``.py`` file under ``paths`` into a project."""
        files: List[ParsedFile] = []
        errors: List[Finding] = []
        for source_path in discover_sources(paths):
            parsed, error = parse_file(source_path, display_for(source_path))
            if parsed is not None:
                files.append(parsed)
            if error is not None:
                errors.append(error)
        return cls(files=files, errors=errors)

    def by_display(self, display: str) -> Optional[ParsedFile]:
        for parsed in self.files:
            if parsed.display == display:
                return parsed
        return None

    def iter_files(self) -> Iterator[ParsedFile]:
        return iter(self.files)
