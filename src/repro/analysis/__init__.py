"""Analysis of confidence-estimator bucket statistics.

The paper's central artifact is the *confidence curve*: buckets sorted by
misprediction rate (highest first), plotted as cumulative % of
mispredictions (y) versus cumulative % of dynamic branches (x).  This
package builds those curves from simulation bucket statistics, combines
benchmarks with the paper's equal-branch-count weighting, generates
Table 1, computes the follow-on literature's confidence quality metrics,
and renders ASCII plots / CSV exports.
"""

from repro.analysis.buckets import BucketStatistics
from repro.analysis.compare import CurveDelta, crossovers, dominates, sample_delta
from repro.analysis.curves import ConfidenceCurve, CurvePoint
from repro.analysis.export import curves_to_csv, table_to_csv
from repro.analysis.metrics import ConfusionCounts, confidence_metrics
from repro.analysis.plotting import ascii_curve_plot, format_curve_table
from repro.analysis.table1 import Table1, Table1Row, build_table1
from repro.analysis.weighting import concat_normalized, equal_weight_combine

__all__ = [
    "BucketStatistics",
    "ConfidenceCurve",
    "CurvePoint",
    "equal_weight_combine",
    "concat_normalized",
    "Table1",
    "Table1Row",
    "build_table1",
    "ConfusionCounts",
    "confidence_metrics",
    "CurveDelta",
    "sample_delta",
    "dominates",
    "crossovers",
    "ascii_curve_plot",
    "format_curve_table",
    "curves_to_csv",
    "table_to_csv",
]
