"""Curve comparison utilities.

The paper compares methods by eye ("there is a region in the 5 to 10
percent range where the third method is slightly better"); these helpers
make such statements checkable: sampled deltas between two curves,
dominance over an x-range, and crossover localization.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Union

import numpy as np
import numpy.typing as npt

from repro.analysis.curves import ConfidenceCurve


@dataclass(frozen=True)
class CurveDelta:
    """y(first) - y(second) sampled on a common x grid."""

    xs: npt.NDArray[np.float64]
    deltas: npt.NDArray[np.float64]
    first_name: str
    second_name: str

    @property
    def max_advantage(self) -> float:
        """Largest margin by which the first curve leads."""
        return float(self.deltas.max()) if self.deltas.size else 0.0

    @property
    def max_deficit(self) -> float:
        """Largest margin by which the first curve trails (>= 0)."""
        if self.deltas.size == 0:
            return 0.0
        return max(0.0, float(-self.deltas.min()))

    @property
    def mean_delta(self) -> float:
        return float(self.deltas.mean()) if self.deltas.size else 0.0


def sample_delta(
    first: ConfidenceCurve,
    second: ConfidenceCurve,
    xs: Union[Sequence[float], npt.NDArray[np.float64]] = tuple(range(1, 100)),
) -> CurveDelta:
    """Sample ``first - second`` at the given x positions (percent)."""
    grid = np.asarray(xs, dtype=np.float64)
    deltas = np.asarray(
        [
            first.mispredictions_captured_at(float(x))
            - second.mispredictions_captured_at(float(x))
            for x in grid
        ],
        dtype=np.float64,
    )
    return CurveDelta(grid, deltas, first.name, second.name)


def dominates(
    first: ConfidenceCurve,
    second: ConfidenceCurve,
    x_range: "tuple[float, float]" = (1.0, 99.0),
    tolerance: float = 0.0,
    samples: int = 99,
) -> bool:
    """True when ``first`` is at least as good as ``second`` everywhere in
    ``x_range`` (within ``tolerance`` percentage points)."""
    low, high = x_range
    xs = np.linspace(low, high, samples)
    delta = sample_delta(first, second, xs)
    return bool((delta.deltas >= -tolerance).all())


def crossovers(
    first: ConfidenceCurve,
    second: ConfidenceCurve,
    x_range: "tuple[float, float]" = (1.0, 99.0),
    samples: int = 197,
    threshold: float = 1e-9,
) -> List[float]:
    """Approximate x positions where the two curves swap order.

    Returns the midpoints of adjacent samples whose deltas have opposite
    signs (ignoring |delta| <= threshold ties).
    """
    low, high = x_range
    xs = np.linspace(low, high, samples)
    delta = sample_delta(first, second, xs).deltas
    signs = np.where(np.abs(delta) <= threshold, 0, np.sign(delta))
    points: List[float] = []
    previous_sign = 0
    previous_x = xs[0]
    for x, sign in zip(xs, signs):
        if sign != 0:
            if previous_sign != 0 and sign != previous_sign:
                points.append(float((previous_x + x) / 2.0))
            previous_sign = sign
            previous_x = x
    return points
