"""Project symbol table: every definition in the scanned parse forest.

The table answers "which definition does this call refer to?" without
importing anything.  Resolution runs in three tiers:

1. **alias-resolved dotted names** — ``from repro.sim.cache import
   stream_key`` binds the local name ``stream_key`` to the qualname
   ``repro.sim.cache.stream_key``, which the table looks up directly;
2. **bare names** — fixture trees (and intra-module calls) have no
   import edge, so an unresolved name falls back to definitions with
   the same terminal name, preferring the same module, then the
   longest shared directory prefix (the same locality heuristic R002
   used for its funnel binding);
3. **method names** — ``obj.method(...)`` resolves through the class
   table when exactly one plausible class in scope defines ``method``.

Module names are derived from the filesystem: a file's dotted module
path is its package chain (directories with ``__init__.py``) plus the
stem, so ``src/repro/sim/cache.py`` is ``repro.sim.cache`` while a
loose fixture file is just its stem.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple, Union

from repro.analysis.lint.model import ParsedFile
from repro.analysis.lint.rules._common import import_aliases

FunctionNode = Union[ast.FunctionDef, ast.AsyncFunctionDef]


def module_name_for(path: Path) -> str:
    """Dotted module path of ``path``, derived from ``__init__.py`` chains."""
    parts: List[str] = []
    if path.stem != "__init__":
        parts.append(path.stem)
    parent = path.parent
    while (parent / "__init__.py").is_file():
        parts.append(parent.name)
        parent = parent.parent
    return ".".join(reversed(parts)) or path.stem


def _shared_parts(left: Tuple[str, ...], right: Tuple[str, ...]) -> int:
    count = 0
    for a, b in zip(left, right):
        if a != b:
            break
        count += 1
    return count


@dataclass(frozen=True)
class FunctionInfo:
    """One function or method definition in the forest."""

    qualname: str
    module: str
    name: str
    class_name: Optional[str]
    parsed: ParsedFile
    node: FunctionNode

    @property
    def params(self) -> Tuple[str, ...]:
        args = self.node.args
        ordered = list(args.posonlyargs) + list(args.args) + list(args.kwonlyargs)
        return tuple(arg.arg for arg in ordered)

    @property
    def positional_params(self) -> Tuple[str, ...]:
        args = self.node.args
        return tuple(arg.arg for arg in list(args.posonlyargs) + list(args.args))

    @property
    def vararg(self) -> Optional[str]:
        return self.node.args.vararg.arg if self.node.args.vararg else None

    @property
    def kwarg(self) -> Optional[str]:
        return self.node.args.kwarg.arg if self.node.args.kwarg else None

    @property
    def dir_parts(self) -> Tuple[str, ...]:
        return self.parsed.path.parent.parts


@dataclass(frozen=True)
class ClassInfo:
    """One class definition in the forest."""

    qualname: str
    module: str
    name: str
    parsed: ParsedFile
    node: ast.ClassDef
    methods: Tuple[str, ...]


@dataclass
class SymbolTable:
    """Indexes of every definition in the forest."""

    functions: Dict[str, FunctionInfo] = field(default_factory=dict)
    functions_by_name: Dict[str, List[FunctionInfo]] = field(default_factory=dict)
    classes: Dict[str, ClassInfo] = field(default_factory=dict)
    classes_by_name: Dict[str, List[ClassInfo]] = field(default_factory=dict)
    modules: Dict[str, ParsedFile] = field(default_factory=dict)
    module_of: Dict[str, str] = field(default_factory=dict)
    aliases: Dict[str, Dict[str, str]] = field(default_factory=dict)

    @classmethod
    def build(cls, files: Sequence[ParsedFile]) -> "SymbolTable":
        table = cls()
        for parsed in files:
            module = module_name_for(parsed.path)
            table.modules.setdefault(module, parsed)
            table.module_of[parsed.display] = module
            table.aliases[parsed.display] = import_aliases(parsed.tree)
            table._collect(parsed, module)
        return table

    def _collect(self, parsed: ParsedFile, module: str) -> None:
        def visit(body: Sequence[ast.stmt], scope: Tuple[str, ...]) -> None:
            for statement in body:
                if isinstance(statement, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    self._add_function(parsed, module, scope, statement)
                    visit(statement.body, scope + (statement.name,))
                elif isinstance(statement, ast.ClassDef):
                    self._add_class(parsed, module, scope, statement)
                    visit(statement.body, scope + (statement.name,))
                elif isinstance(statement, (ast.If, ast.Try, ast.With)):
                    # Definitions guarded by TYPE_CHECKING / try-import
                    # blocks still belong to the module scope.
                    for child in ast.iter_child_nodes(statement):
                        if isinstance(child, ast.stmt):
                            visit([child], scope)

        visit(parsed.tree.body, ())

    def _add_function(
        self,
        parsed: ParsedFile,
        module: str,
        scope: Tuple[str, ...],
        node: FunctionNode,
    ) -> None:
        qualname = ".".join((module,) + scope + (node.name,))
        class_name = scope[-1] if scope and scope[-1] in self.classes_by_name else None
        if class_name is None and scope:
            # The enclosing scope may be a class not yet registered by
            # name (same pass); detect via the raw scope string instead.
            class_name = scope[-1] if scope[-1][:1].isupper() else None
        info = FunctionInfo(
            qualname=qualname,
            module=module,
            name=node.name,
            class_name=class_name,
            parsed=parsed,
            node=node,
        )
        self.functions.setdefault(qualname, info)
        self.functions_by_name.setdefault(node.name, []).append(info)

    def _add_class(
        self,
        parsed: ParsedFile,
        module: str,
        scope: Tuple[str, ...],
        node: ast.ClassDef,
    ) -> None:
        qualname = ".".join((module,) + scope + (node.name,))
        methods = tuple(
            statement.name
            for statement in node.body
            if isinstance(statement, (ast.FunctionDef, ast.AsyncFunctionDef))
        )
        info = ClassInfo(
            qualname=qualname,
            module=module,
            name=node.name,
            parsed=parsed,
            node=node,
            methods=methods,
        )
        self.classes.setdefault(qualname, info)
        self.classes_by_name.setdefault(node.name, []).append(info)

    # -- resolution ----------------------------------------------------

    def _closest(
        self, candidates: List[FunctionInfo], caller_file: ParsedFile
    ) -> Optional[FunctionInfo]:
        """The candidate nearest ``caller_file`` in the directory tree."""
        best: Optional[FunctionInfo] = None
        best_score = -1
        anchor = caller_file.path.parent.parts
        for candidate in candidates:
            score = _shared_parts(candidate.dir_parts, anchor)
            if score > best_score or (
                score == best_score
                and best is not None
                and candidate.qualname < best.qualname
            ):
                best, best_score = candidate, score
        return best

    def resolve_callable(
        self, func: ast.expr, caller_file: ParsedFile
    ) -> Optional[FunctionInfo]:
        """The project function a call's ``func`` expression refers to."""
        aliases = self.aliases.get(caller_file.display, {})
        dotted = _dotted(func, aliases)
        if dotted is not None:
            direct = self.functions.get(dotted)
            if direct is not None:
                return direct
        if isinstance(func, ast.Name):
            caller_module = self.module_of.get(caller_file.display, "")
            candidates = self.functions_by_name.get(func.id, [])
            same_module = [c for c in candidates if c.module == caller_module]
            if same_module:
                return same_module[0]
            if candidates:
                return self._closest(candidates, caller_file)
        if isinstance(func, ast.Attribute):
            # ``obj.method(...)``: bind through the class table when the
            # method name is unique enough; prefer local definitions.
            candidates = [
                c
                for c in self.functions_by_name.get(func.attr, [])
                if c.class_name is not None
            ]
            if candidates:
                return self._closest(candidates, caller_file)
        return None

    def resolve_class(
        self, func: ast.expr, caller_file: ParsedFile
    ) -> Optional[ClassInfo]:
        """The project class a call's ``func`` expression constructs."""
        aliases = self.aliases.get(caller_file.display, {})
        dotted = _dotted(func, aliases)
        if dotted is not None:
            direct = self.classes.get(dotted)
            if direct is not None:
                return direct
            terminal = dotted.rsplit(".", 1)[-1]
            candidates = self.classes_by_name.get(terminal, [])
            if len(candidates) == 1:
                return candidates[0]
            if candidates:
                anchor = caller_file.path.parent.parts
                return max(
                    candidates,
                    key=lambda c: (
                        _shared_parts(c.parsed.path.parent.parts, anchor),
                        c.qualname,
                    ),
                )
        return None


def _dotted(node: ast.expr, aliases: Dict[str, str]) -> Optional[str]:
    parts: List[str] = []
    current: ast.expr = node
    while isinstance(current, ast.Attribute):
        parts.append(current.attr)
        current = current.value
    if not isinstance(current, ast.Name):
        return None
    parts.append(aliases.get(current.id, current.id))
    return ".".join(reversed(parts))
