"""Forward taint/dataflow graph over the whole parse forest.

The graph has one node per *value slot* and one edge per syntactic
flow.  Slots:

* ``("var", qualname, name)`` — a parameter or local of a function
  (parameters are just locals that receive edges from call sites);
* ``("site", qualname, index)`` — the result of the ``index``-th call
  expression inside a function;
* ``("ret", qualname)`` — a function's return value;
* ``("read", qualname, base, attr)`` — an attribute read ``base.attr``
  occurring anywhere inside a function (merged across occurrences).

Edges are added for assignments (including tuple unpacking, ``for``
targets, ``with ... as``, comprehension generators, augmented and
walrus assignments), for returns, and for calls:

* resolved project callee ``g`` — argument tokens flow into ``g``'s
  parameter slots (positionally, by keyword, through ``*``/``**``
  over-approximations) and ``("ret", g)`` flows into the call-site
  slot;
* unresolved callee (builtins, numpy, methods) — receiver and argument
  tokens flow straight into the call-site slot, so ``max(a, b)`` or
  ``request.get("length")`` taints its result when an input is
  tainted.

Everything is a may-analysis: extra edges cost precision, never
soundness, which is the right trade for lint rules that must not miss
a stale-cache path.  Rules query the graph with plain BFS
(:meth:`FlowGraph.forward_reach` / :meth:`FlowGraph.reverse_reach`)
from rule-specific seed/sink slots.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple, Union

from repro.analysis.flow.callgraph import CallGraph, CallSite, scope_walk
from repro.analysis.flow.symbols import FunctionInfo, SymbolTable

#: One value slot.  The first element is the kind tag; the rest are
#: kind-specific coordinates (see module docstring).
Node = Tuple[str, ...]


def var_node(qualname: str, name: str) -> Node:
    return ("var", qualname, name)


def site_node(qualname: str, index: int) -> Node:
    return ("site", qualname, str(index))


def ret_node(qualname: str) -> Node:
    return ("ret", qualname)


def read_node(qualname: str, base: str, attr: str) -> Node:
    return ("read", qualname, base, attr)


class FlowGraph:
    """The assembled slot graph plus per-function lookup tables."""

    def __init__(self) -> None:
        self.forward: Dict[Node, Set[Node]] = {}
        self.reverse: Dict[Node, Set[Node]] = {}
        #: id(ast.Call) -> site index, per function qualname.
        self._site_ids: Dict[str, Dict[int, int]] = {}
        #: every ("read", ...) node, for seed scans.
        self.reads: Set[Node] = set()

    # -- construction --------------------------------------------------

    @classmethod
    def build(cls, symbols: SymbolTable, callgraph: CallGraph) -> "FlowGraph":
        graph = cls()
        for info in symbols.functions.values():
            graph._site_ids[info.qualname] = {
                id(site.call): site.index for site in callgraph.calls_in(info.qualname)
            }
        for info in symbols.functions.values():
            graph._add_function(info, callgraph)
        return graph

    def _edge(self, source: Node, target: Node) -> None:
        self.forward.setdefault(source, set()).add(target)
        self.reverse.setdefault(target, set()).add(source)

    def expr_tokens(self, qualname: str, expr: Optional[ast.AST]) -> Set[Node]:
        """The source slots a value expression draws from."""
        tokens: Set[Node] = set()
        if expr is None:
            return tokens
        site_ids = self._site_ids.get(qualname, {})
        for node in ast.walk(expr):
            if isinstance(node, ast.Name) and isinstance(node.ctx, ast.Load):
                tokens.add(var_node(qualname, node.id))
            elif isinstance(node, ast.Call):
                index = site_ids.get(id(node))
                if index is not None:
                    tokens.add(site_node(qualname, index))
            elif isinstance(node, ast.Attribute) and isinstance(node.value, ast.Name):
                read = read_node(qualname, node.value.id, node.attr)
                tokens.add(read)
                self.reads.add(read)
        return tokens

    def _flow(self, qualname: str, targets: Iterable[str], value: ast.AST) -> None:
        tokens = self.expr_tokens(qualname, value)
        for name in targets:
            for token in tokens:
                self._edge(token, var_node(qualname, name))

    def _add_function(self, info: FunctionInfo, callgraph: CallGraph) -> None:
        qualname = info.qualname
        for node in scope_walk(info.node):
            if isinstance(node, ast.Assign):
                names = _target_names(node.targets)
                self._flow(qualname, names, node.value)
            elif isinstance(node, ast.AnnAssign) and node.value is not None:
                self._flow(qualname, _target_names([node.target]), node.value)
            elif isinstance(node, ast.AugAssign):
                self._flow(qualname, _target_names([node.target]), node.value)
            elif isinstance(node, ast.NamedExpr):
                self._flow(qualname, _target_names([node.target]), node.value)
            elif isinstance(node, ast.For):
                self._flow(qualname, _target_names([node.target]), node.iter)
            elif isinstance(node, (ast.ListComp, ast.SetComp, ast.DictComp, ast.GeneratorExp)):
                for generator in node.generators:
                    self._flow(
                        qualname, _target_names([generator.target]), generator.iter
                    )
            elif isinstance(node, ast.withitem) and node.optional_vars is not None:
                self._flow(
                    qualname,
                    _target_names([node.optional_vars]),
                    node.context_expr,
                )
            elif isinstance(node, ast.Return) and node.value is not None:
                for token in self.expr_tokens(qualname, node.value):
                    self._edge(token, ret_node(qualname))
        for site in callgraph.calls_in(qualname):
            self._add_call(info, site)

    def _add_call(self, caller: FunctionInfo, site: CallSite) -> None:
        qualname = caller.qualname
        result = site_node(qualname, site.index)
        call = site.call
        callee = site.callee
        if callee is None:
            for token in self.expr_tokens(qualname, call.func):
                self._edge(token, result)
            for arg in call.args:
                for token in self.expr_tokens(qualname, arg):
                    self._edge(token, result)
            for keyword in call.keywords:
                for token in self.expr_tokens(qualname, keyword.value):
                    self._edge(token, result)
            return

        target = callee.qualname
        self._edge(ret_node(target), result)
        positional = list(callee.positional_params)
        offset = 0
        if (
            callee.class_name is not None
            and positional
            and positional[0] in ("self", "cls")
            and isinstance(call.func, ast.Attribute)
        ):
            for token in self.expr_tokens(qualname, call.func.value):
                self._edge(token, var_node(target, positional[0]))
            offset = 1

        spill: Tuple[str, ...] = callee.params
        index = offset
        for arg in call.args:
            if isinstance(arg, ast.Starred):
                for token in self.expr_tokens(qualname, arg.value):
                    for spilled in spill:
                        self._edge(token, var_node(target, spilled))
                    if callee.vararg:
                        self._edge(token, var_node(target, callee.vararg))
                continue
            param: Optional[str]
            if index < len(positional):
                param = positional[index]
            else:
                param = callee.vararg
            index += 1
            if param is not None:
                for token in self.expr_tokens(qualname, arg):
                    self._edge(token, var_node(target, param))
        for keyword in call.keywords:
            tokens = self.expr_tokens(qualname, keyword.value)
            if keyword.arg is None:
                # ``g(**mapping)``: may bind any keyword-capable
                # parameter, and the catch-all ``**kwargs`` if present.
                receivers = [p for p in callee.params if p not in ("self", "cls")]
                if callee.kwarg:
                    receivers.append(callee.kwarg)
            elif keyword.arg in callee.params:
                receivers = [keyword.arg]
            elif callee.kwarg:
                receivers = [callee.kwarg]
            else:
                receivers = []
            for token in tokens:
                for param in receivers:
                    self._edge(token, var_node(target, param))

    # -- queries -------------------------------------------------------

    def forward_reach(self, seeds: Iterable[Node]) -> Set[Node]:
        """Every slot reachable from ``seeds`` along flow edges."""
        return _bfs(seeds, self.forward)

    def reverse_reach(self, targets: Iterable[Node]) -> Set[Node]:
        """Every slot from which some ``target`` is reachable."""
        return _bfs(targets, self.reverse)

    def site_index_of(self, qualname: str, call: ast.Call) -> Optional[int]:
        return self._site_ids.get(qualname, {}).get(id(call))


def _bfs(seeds: Iterable[Node], edges: Dict[Node, Set[Node]]) -> Set[Node]:
    seen: Set[Node] = set(seeds)
    frontier: List[Node] = list(seen)
    while frontier:
        current = frontier.pop()
        for successor in edges.get(current, ()):
            if successor not in seen:
                seen.add(successor)
                frontier.append(successor)
    return seen


_TargetNode = Union[ast.expr, ast.AST]


def _target_names(targets: Sequence[_TargetNode]) -> List[str]:
    """Local names an assignment target binds (over-approximated).

    ``a.b = v`` and ``a[k] = v`` count as flows into ``a`` — mutating a
    field or element taints the container for a may-analysis.
    """
    names: List[str] = []
    stack: List[_TargetNode] = list(targets)
    while stack:
        node = stack.pop()
        if isinstance(node, ast.Name):
            names.append(node.id)
        elif isinstance(node, (ast.Tuple, ast.List)):
            stack.extend(node.elts)
        elif isinstance(node, ast.Starred):
            stack.append(node.value)
        elif isinstance(node, (ast.Attribute, ast.Subscript)):
            if isinstance(node.value, ast.Name):
                names.append(node.value.id)
    return names
