"""Numpy dtype abstract interpretation for the numeric kernels.

A tiny non-relational abstract domain: each local name maps to a dtype
token (``"uint8"``, ``"int64"``, ``"float32"``, ...) or ``None`` for
unknown.  Python scalars get the weak tokens ``"pyint"``/``"pyfloat"``
so that ``counters + 1`` keeps the array's width instead of widening
to a 64-bit result, matching numpy's value-based casting for scalars.

Inference sources, in rough order of trust:

* explicit constructors — ``np.zeros(n, dtype=np.uint8)``,
  ``x.astype(np.int64)``, ``np.uint16(v)``;
* propagation — binary ops promote via :func:`promote`, comparisons
  produce ``bool``, shape-only methods (``copy``/``reshape``/...)
  keep the operand dtype, ``np.where``/``np.concatenate`` promote
  their branches;
* interprocedural summaries — a project function's return dtype is the
  join of its return expressions, computed to fixpoint by
  :func:`return_summaries` so kernels that build arrays in helpers
  still infer at the call site;
* hazards — ``np.arange`` (or ``np.cumsum`` on a narrow int) without
  an explicit dtype yields the platform-default integer, modeled as
  the distinguished token ``"platform"`` that rule R009 flags inside
  scoped subtrees.

This is deliberately a may-analysis over names written in the source:
anything dynamic degrades to unknown, never to a wrong width.
"""

from __future__ import annotations

import ast
from typing import Dict, List, Optional, Tuple

from repro.analysis.flow.callgraph import scope_walk
from repro.analysis.flow.symbols import FunctionInfo, SymbolTable

#: Signed/unsigned integer tokens by width, used for promotion.
INT_WIDTHS: Dict[str, int] = {
    "int8": 8,
    "int16": 16,
    "int32": 32,
    "int64": 64,
    "uint8": 8,
    "uint16": 16,
    "uint32": 32,
    "uint64": 64,
}

FLOAT_WIDTHS: Dict[str, int] = {"float32": 32, "float64": 64}

#: Platform-default integer (``np.int_``): width depends on the host,
#: which is exactly the portability hazard R009 exists to flag.
PLATFORM = "platform"

_NUMPY_DTYPE_NAMES: Dict[str, str] = {
    **{name: name for name in INT_WIDTHS},
    **{name: name for name in FLOAT_WIDTHS},
    "bool_": "bool",
    "bool": "bool",
    "intp": PLATFORM,
    "int_": PLATFORM,
    "uintp": PLATFORM,
    "uint": PLATFORM,
    "intc": "int32",
    "single": "float32",
    "double": "float64",
    "float_": "float64",
}

#: numpy allocators whose result dtype is the ``dtype=`` keyword.
_ALLOCATORS = frozenset(
    {"zeros", "ones", "empty", "full", "array", "asarray", "frombuffer", "fromiter"}
)
_LIKE_ALLOCATORS = frozenset({"zeros_like", "ones_like", "empty_like", "full_like"})
#: shape-only methods: result keeps the receiver's dtype.
_SHAPE_METHODS = frozenset(
    {"copy", "ravel", "reshape", "flatten", "squeeze", "transpose", "take", "repeat"}
)
#: reductions that keep the operand dtype.
_KEEP_REDUCTIONS = frozenset({"where", "concatenate", "stack", "maximum", "minimum"})
#: accumulators that silently widen narrow ints to the platform int.
ACCUMULATORS = frozenset({"cumsum", "cumprod", "sum", "prod"})


def is_int(token: Optional[str]) -> bool:
    return token in INT_WIDTHS or token == PLATFORM or token == "pyint"


def is_float(token: Optional[str]) -> bool:
    return token in FLOAT_WIDTHS or token == "pyfloat"


def is_array_int(token: Optional[str]) -> bool:
    """Integer tokens with a concrete machine width."""
    return token in INT_WIDTHS


def promote(left: Optional[str], right: Optional[str]) -> Optional[str]:
    """Join two dtype tokens under (approximate) numpy promotion."""
    if left == right:
        return left
    if left is None or right is None:
        return None
    for weak, other in ((left, right), (right, left)):
        if weak == "pyint":
            if other in INT_WIDTHS or other in FLOAT_WIDTHS or other == PLATFORM:
                return other
            if other == "bool":
                return PLATFORM
            return None
        if weak == "pyfloat":
            if other in FLOAT_WIDTHS:
                return other
            if other in INT_WIDTHS or other == PLATFORM or other == "bool":
                return "float64"
            return None
        if weak == "bool":
            return other
    if left in FLOAT_WIDTHS and right in FLOAT_WIDTHS:
        return "float64"
    if left in FLOAT_WIDTHS or right in FLOAT_WIDTHS:
        return "float64"  # int ⊕ float widens
    if left in INT_WIDTHS and right in INT_WIDTHS:
        signed = left.startswith("i") == right.startswith("i")
        if not signed:
            return None
        return left if INT_WIDTHS[left] >= INT_WIDTHS[right] else right
    return None


def dtype_of_expr(node: ast.AST, aliases: Dict[str, str]) -> Optional[str]:
    """The dtype a ``dtype=`` argument names (``np.uint8`` -> ``uint8``)."""
    if isinstance(node, ast.Attribute):
        return _NUMPY_DTYPE_NAMES.get(node.attr)
    if isinstance(node, ast.Name):
        root = aliases.get(node.id, node.id)
        return _NUMPY_DTYPE_NAMES.get(root.rsplit(".", 1)[-1])
    if isinstance(node, ast.Constant) and isinstance(node.value, str):
        return _NUMPY_DTYPE_NAMES.get(node.value)
    return None


def _call_name(call: ast.Call) -> Optional[str]:
    if isinstance(call.func, ast.Attribute):
        return call.func.attr
    if isinstance(call.func, ast.Name):
        return call.func.id
    return None


def _dtype_keyword(call: ast.Call, aliases: Dict[str, str]) -> Optional[str]:
    for keyword in call.keywords:
        if keyword.arg == "dtype":
            return dtype_of_expr(keyword.value, aliases)
    return None


class DtypeInference:
    """Per-function dtype environments with interprocedural summaries."""

    def __init__(self, symbols: SymbolTable) -> None:
        self.symbols = symbols
        self.summaries: Dict[str, Optional[str]] = {}

    def infer(
        self,
        node: Optional[ast.AST],
        env: Dict[str, Optional[str]],
        info: FunctionInfo,
    ) -> Optional[str]:
        if node is None:
            return None
        aliases = self.symbols.aliases.get(info.parsed.display, {})
        if isinstance(node, ast.Constant):
            if isinstance(node.value, bool):
                return "bool"
            if isinstance(node.value, int):
                return "pyint"
            if isinstance(node.value, float):
                return "pyfloat"
            return None
        if isinstance(node, ast.Name):
            return env.get(node.id)
        if isinstance(node, ast.Subscript):
            return self.infer(node.value, env, info)
        if isinstance(node, ast.UnaryOp):
            if isinstance(node.op, ast.Not):
                return "bool"
            return self.infer(node.operand, env, info)
        if isinstance(node, ast.Compare):
            return "bool"
        if isinstance(node, ast.BoolOp):
            return None
        if isinstance(node, ast.IfExp):
            return promote(
                self.infer(node.body, env, info), self.infer(node.orelse, env, info)
            )
        if isinstance(node, ast.BinOp):
            left = self.infer(node.left, env, info)
            right = self.infer(node.right, env, info)
            if isinstance(node.op, (ast.LShift, ast.RShift, ast.BitAnd, ast.BitOr, ast.BitXor)):
                # Bitwise ops never change kind; keep the array side.
                if left == "pyint":
                    return right
                if right == "pyint":
                    return left
            if isinstance(node.op, ast.Div):
                # True division yields float regardless of operand
                # widths — even when the operands are unknown.
                if is_float(left) or is_float(right):
                    return promote(left, right)
                return "float64"
            return promote(left, right)
        if isinstance(node, ast.Call):
            return self._infer_call(node, env, info, aliases)
        return None

    def _infer_call(
        self,
        call: ast.Call,
        env: Dict[str, Optional[str]],
        info: FunctionInfo,
        aliases: Dict[str, str],
    ) -> Optional[str]:
        name = _call_name(call)
        if name is None:
            return None
        explicit = _dtype_keyword(call, aliases)
        if name == "astype":
            if call.args:
                return dtype_of_expr(call.args[0], aliases) or explicit
            return explicit
        if name in _ALLOCATORS:
            return explicit
        if name in _LIKE_ALLOCATORS:
            if explicit is not None:
                return explicit
            if call.args:
                return self.infer(call.args[0], env, info)
            return None
        if name == "arange":
            return explicit if explicit is not None else PLATFORM
        if name in _NUMPY_DTYPE_NAMES and _is_numpy_call(call, aliases):
            return _NUMPY_DTYPE_NAMES[name]
        if name in ACCUMULATORS:
            if explicit is not None:
                return explicit
            operand: Optional[ast.AST]
            if isinstance(call.func, ast.Attribute) and not _is_numpy_call(call, aliases):
                operand = call.func.value
            elif call.args:
                operand = call.args[0]
            else:
                operand = None
            operand_token = self.infer(operand, env, info)
            if operand_token in (
                "bool", "int8", "int16", "int32", "uint8", "uint16", "uint32", "pyint",
            ):
                return PLATFORM
            return operand_token
        if name in _SHAPE_METHODS and isinstance(call.func, ast.Attribute):
            return self.infer(call.func.value, env, info)
        if name in _KEEP_REDUCTIONS:
            joined: Optional[str] = None
            first = True
            for arg in call.args[1 if name == "where" else 0 :]:
                inferred = self.infer(arg, env, info)
                joined = inferred if first else promote(joined, inferred)
                first = False
            return joined
        resolved = self.symbols.resolve_callable(call.func, info.parsed)
        if resolved is not None:
            return self.summaries.get(resolved.qualname)
        return None

    # -- per-function environments ------------------------------------

    def function_env(
        self, info: FunctionInfo
    ) -> Tuple[Dict[str, Optional[str]], List[Tuple[str, str, str, ast.AST]]]:
        """(final env, rebind events) for one function body.

        A rebind event ``(name, old, new, node)`` records an assignment
        that changed a name's inferred dtype — the raw material of the
        implicit-upcast check.  Statements are processed in source
        order, twice, so loop-carried names stabilize.
        """
        statements = self._ordered_assignments(info)
        env: Dict[str, Optional[str]] = {}
        rebinds: List[Tuple[str, str, str, ast.AST]] = []
        for round_index in range(2):
            for target_name, value, node, explicit in statements:
                token = self.infer(value, env, info)
                old = env.get(target_name)
                if (
                    round_index == 1
                    and old is not None
                    and token is not None
                    and old != token
                    and old not in ("pyint", "pyfloat")
                    and token not in ("pyint", "pyfloat")
                    and not explicit
                ):
                    rebinds.append((target_name, old, token, node))
                if token is not None or target_name not in env:
                    env[target_name] = token
            if round_index == 0:
                rebinds.clear()
        return env, rebinds

    def _ordered_assignments(
        self, info: FunctionInfo
    ) -> List[Tuple[str, ast.AST, ast.AST, bool]]:
        collected: List[Tuple[str, ast.AST, ast.AST, bool]] = []
        for node in scope_walk(info.node):
            if isinstance(node, ast.Assign) and node.value is not None:
                for target in node.targets:
                    if isinstance(target, ast.Name):
                        collected.append(
                            (target.id, node.value, node, _is_explicit(node.value))
                        )
            elif isinstance(node, ast.AnnAssign) and node.value is not None:
                if isinstance(node.target, ast.Name):
                    collected.append(
                        (node.target.id, node.value, node, _is_explicit(node.value))
                    )
            elif isinstance(node, ast.AugAssign):
                if isinstance(node.target, ast.Name):
                    value = ast.BinOp(
                        left=ast.Name(id=node.target.id, ctx=ast.Load()),
                        op=node.op,
                        right=node.value,
                    )
                    ast.copy_location(value, node)
                    ast.fix_missing_locations(value)
                    collected.append((node.target.id, value, node, False))
        collected.sort(key=lambda item: (item[2].lineno, item[2].col_offset))
        return collected


def _is_explicit(value: ast.AST) -> bool:
    """True when the assignment names its dtype on purpose."""
    if not isinstance(value, ast.Call):
        return False
    name = _call_name(value)
    if name == "astype":
        return True
    if name in _NUMPY_DTYPE_NAMES:
        return True
    return any(keyword.arg == "dtype" for keyword in value.keywords)


def _is_numpy_call(call: ast.Call, aliases: Dict[str, str]) -> bool:
    current: ast.AST = call.func
    while isinstance(current, ast.Attribute):
        current = current.value
    if isinstance(current, ast.Name):
        root = aliases.get(current.id, current.id)
        return root.split(".", 1)[0] == "numpy"
    return False


def return_summaries(
    symbols: SymbolTable, inference: DtypeInference
) -> Dict[str, Optional[str]]:
    """Fixpoint of per-function return dtypes (join over return exprs)."""
    changed = True
    rounds = 0
    while changed and rounds < 5:
        changed = False
        rounds += 1
        for info in symbols.functions.values():
            env, _ = inference.function_env(info)
            token: Optional[str] = None
            first = True
            for node in scope_walk(info.node):
                if isinstance(node, ast.Return) and node.value is not None:
                    inferred = inference.infer(node.value, env, info)
                    token = inferred if first else promote(token, inferred)
                    first = False
            if inference.summaries.get(info.qualname, "∅") != token:
                inference.summaries[info.qualname] = token
                changed = True
    return inference.summaries
