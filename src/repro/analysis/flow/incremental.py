"""Content-hash keyed incremental cache for whole-program lint runs.

Whole-program analysis is what makes R008–R010 possible — and what
would make every pre-commit hook pay the full-tree price.  The
incremental mode bounds that cost with two tiers:

* **exact replay** — the *project digest* hashes the engine version,
  the selected rule ids, and every ``(display path, content sha)``
  pair.  A warm run on an unchanged tree matches the digest and
  replays the stored findings byte-for-byte without parsing a single
  file;
* **partial re-analysis** — when some files changed, only the changed
  files plus their *dependency closure* are re-analyzed; findings for
  every other file replay from the cache.  The closure is computed on
  the undirected file graph of :func:`~repro.analysis.flow.callgraph.
  file_dependency_graph` (import edges + same-directory edges), whose
  edges over-approximate every cross-file resolution tier the flow
  analyses use — so a finding anchored outside the closure could not
  have changed.  Per-file facts (module name, imports) are persisted
  so unchanged files contribute their edges without being re-parsed.

The cache is one JSON file (``state.json``) inside the cache
directory; it is keyed by display paths, which are cwd-relative — a
run from a different working directory misses cleanly and rebuilds.
Corrupt or version-skewed state is discarded, never trusted.
"""

from __future__ import annotations

import ast
import hashlib
import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.analysis.flow.callgraph import file_dependency_graph, imported_modules
from repro.analysis.flow.symbols import module_name_for
from repro.analysis.lint.model import Finding

#: Schema tag of the on-disk cache state; bump to invalidate caches.
CACHE_SCHEMA = "reproflow-cache/1"

#: Fingerprint of the analysis code itself.  Bump whenever a rule's
#: semantics change in a way that should invalidate warm results.
ENGINE_VERSION = "reproflow-1"


def _coerce_record(entry: object) -> Dict[str, object]:
    if not isinstance(entry, dict):
        raise TypeError(f"expected a finding record, got {entry!r}")
    return {str(key): value for key, value in entry.items()}


@dataclass
class FileRecord:
    """Cached per-file analysis results and dependency facts."""

    sha: str
    module: str
    imports: List[str]
    findings: List[Dict[str, object]]
    suppressed: int

    def to_dict(self) -> Dict[str, object]:
        return {
            "sha": self.sha,
            "module": self.module,
            "imports": sorted(self.imports),
            "findings": self.findings,
            "suppressed": self.suppressed,
        }

    @classmethod
    def from_dict(cls, record: Dict[str, object]) -> "FileRecord":
        imports = record.get("imports", [])
        findings = record.get("findings", [])
        suppressed = record.get("suppressed", 0)
        if not isinstance(imports, list) or not isinstance(findings, list):
            raise TypeError("imports and findings must be lists")
        if isinstance(suppressed, bool) or not isinstance(suppressed, int):
            raise TypeError("suppressed must be an integer")
        return cls(
            sha=str(record["sha"]),
            module=str(record["module"]),
            imports=[str(module) for module in imports],
            findings=[_coerce_record(entry) for entry in findings],
            suppressed=suppressed,
        )


@dataclass
class CacheState:
    """The whole persisted state of one lint configuration."""

    digest: str
    rules: List[str]
    files: Dict[str, FileRecord] = field(default_factory=dict)

    def to_dict(self) -> Dict[str, object]:
        return {
            "schema": CACHE_SCHEMA,
            "engine": ENGINE_VERSION,
            "digest": self.digest,
            "rules": list(self.rules),
            "files": {
                display: record.to_dict() for display, record in self.files.items()
            },
        }


def content_sha(path: Path) -> str:
    return hashlib.sha256(path.read_bytes()).hexdigest()


def project_digest(
    rules: Sequence[str], fingerprints: Sequence[Tuple[str, str]]
) -> str:
    payload = json.dumps(
        {
            "schema": CACHE_SCHEMA,
            "engine": ENGINE_VERSION,
            "rules": list(rules),
            "files": sorted(fingerprints),
        },
        sort_keys=True,
    )
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()


def state_path(cache_dir: Path) -> Path:
    return cache_dir / "state.json"


def load_state(cache_dir: Path) -> Optional[CacheState]:
    """The persisted state, or None when absent/corrupt/version-skewed."""
    try:
        raw = json.loads(state_path(cache_dir).read_text(encoding="utf-8"))
    except (OSError, ValueError):
        return None
    if not isinstance(raw, dict):
        return None
    if raw.get("schema") != CACHE_SCHEMA or raw.get("engine") != ENGINE_VERSION:
        return None
    try:
        stored = raw.get("files", {})
        rules = raw["rules"]
        if not isinstance(stored, dict) or not isinstance(rules, list):
            return None
        files = {
            str(display): FileRecord.from_dict(_coerce_record(record))
            for display, record in stored.items()
        }
        return CacheState(
            digest=str(raw["digest"]),
            rules=[str(rule) for rule in rules],
            files=files,
        )
    except (KeyError, TypeError, ValueError):
        return None


def save_state(cache_dir: Path, state: CacheState) -> None:
    cache_dir.mkdir(parents=True, exist_ok=True)
    target = state_path(cache_dir)
    tmp = target.with_name(target.name + ".tmp")
    tmp.write_text(
        json.dumps(state.to_dict(), indent=1, sort_keys=True), encoding="utf-8"
    )
    tmp.replace(target)


def file_facts_for(path: Path) -> Tuple[str, List[str]]:
    """(module name, imports) of a file, parsed fresh.

    Unparseable files contribute no import edges (they still belong to
    their directory clique, which is enough for invalidation).
    """
    module = module_name_for(path)
    try:
        tree = ast.parse(path.read_text(encoding="utf-8"))
    except (OSError, SyntaxError, UnicodeDecodeError):
        return module, []
    return module, sorted(imported_modules(tree))


def invalidation_closure(
    changed: Set[str],
    modules: Dict[str, str],
    imports: Dict[str, Set[str]],
) -> Set[str]:
    """Displays whose findings may change when ``changed`` changed.

    BFS over the undirected file dependency graph, seeded with the
    changed (and removed) files.
    """
    graph = file_dependency_graph(modules, imports)
    seen: Set[str] = set(display for display in changed if display in graph)
    seen.update(changed)
    frontier: List[str] = [d for d in changed if d in graph]
    while frontier:
        current = frontier.pop()
        for neighbor in graph.get(current, ()):  # pragma: no branch
            if neighbor not in seen:
                seen.add(neighbor)
                frontier.append(neighbor)
    return seen


def replay_findings(record: FileRecord) -> List[Finding]:
    return [Finding.from_dict(raw) for raw in record.findings]
