"""Interprocedural call graph over the project symbol table.

Two views of the same edges:

* **call sites** — every ``ast.Call`` inside every function body,
  with the callee resolved through :class:`~.symbols.SymbolTable`
  (``None`` for builtins / third-party calls).  Rules walk these to
  follow values across function boundaries;
* **file dependency graph** — an *undirected* file-level projection
  (import edges plus same-directory edges) used by the incremental
  engine: a change to one file can only affect findings anchored in
  files reachable through this graph, because every cross-file
  resolution tier in :mod:`~.symbols` (imports, bare-name locality,
  method locality) follows an import edge or stays within a
  directory.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Set, Tuple

from repro.analysis.flow.symbols import FunctionInfo, FunctionNode, SymbolTable
from repro.analysis.lint.model import ParsedFile


@dataclass(frozen=True)
class CallSite:
    """One call expression inside a function body."""

    caller: FunctionInfo
    index: int
    call: ast.Call
    callee: Optional[FunctionInfo]

    @property
    def line(self) -> int:
        return self.call.lineno


def scope_walk(node: FunctionNode) -> Iterator[ast.AST]:
    """Walk a function body without descending into nested defs.

    Nested functions and classes are separate :class:`FunctionInfo`
    entries; lambdas are *not* — their bodies execute in the enclosing
    frame for our purposes, so the walk descends into them.
    """
    stack: List[ast.AST] = list(ast.iter_child_nodes(node))
    while stack:
        current = stack.pop()
        if isinstance(current, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
            continue
        yield current
        stack.extend(ast.iter_child_nodes(current))


@dataclass
class CallGraph:
    """All resolved call sites, indexed both ways."""

    sites: List[CallSite] = field(default_factory=list)
    sites_by_caller: Dict[str, List[CallSite]] = field(default_factory=dict)
    callers_of: Dict[str, List[CallSite]] = field(default_factory=dict)
    site_index: Dict[Tuple[str, int], CallSite] = field(default_factory=dict)

    @classmethod
    def build(cls, symbols: SymbolTable) -> "CallGraph":
        graph = cls()
        for info in symbols.functions.values():
            sites: List[CallSite] = []
            for index, call in enumerate(_calls_in(info.node)):
                callee = symbols.resolve_callable(call.func, info.parsed)
                site = CallSite(caller=info, index=index, call=call, callee=callee)
                sites.append(site)
                graph.sites.append(site)
                graph.site_index[(info.qualname, index)] = site
                if callee is not None:
                    graph.callers_of.setdefault(callee.qualname, []).append(site)
            graph.sites_by_caller[info.qualname] = sites
        return graph

    def calls_in(self, qualname: str) -> List[CallSite]:
        return self.sites_by_caller.get(qualname, [])


def _calls_in(node: FunctionNode) -> List[ast.Call]:
    calls = [child for child in scope_walk(node) if isinstance(child, ast.Call)]
    calls.sort(key=lambda call: (call.lineno, call.col_offset))
    return calls


def file_facts(parsed: ParsedFile) -> Tuple[str, Set[str]]:
    """(module name, imported modules) of one parsed file.

    The incremental engine persists these per file so the dependency
    graph can be rebuilt for unchanged files without re-parsing them.
    """
    from repro.analysis.flow.symbols import module_name_for

    return module_name_for(parsed.path), imported_modules(parsed.tree)


def file_dependency_graph(
    module_by_display: Dict[str, str],
    imports_by_display: Dict[str, Set[str]],
) -> Dict[str, Set[str]]:
    """Undirected file-level dependency edges, keyed by display path.

    Edges: (a) ``A`` imports a module defined by ``B`` (either
    direction), (b) ``A`` and ``B`` sit in the same directory (bare-name
    and funnel-locality resolution can couple directory-mates without
    an import statement).  Inputs come from :func:`file_facts` —
    freshly parsed or replayed from the incremental cache.
    """
    by_module: Dict[str, str] = {}
    for display, module in module_by_display.items():
        by_module.setdefault(module, display)

    edges: Dict[str, Set[str]] = {display: set() for display in module_by_display}
    for display, wanted in imports_by_display.items():
        if display not in edges:
            continue
        for module in wanted:
            # ``from repro.sim.cache import stream_key`` records both
            # ``repro.sim.cache`` and ``repro.sim.cache.stream_key``;
            # match the longest module prefix defined in the forest.
            target = by_module.get(module)
            while target is None and "." in module:
                module = module.rsplit(".", 1)[0]
                target = by_module.get(module)
            if target is not None and target != display:
                edges[display].add(target)
                edges[target].add(display)

    by_dir: Dict[str, List[str]] = {}
    for display in module_by_display:
        by_dir.setdefault(_display_dir(display), []).append(display)
    for group in by_dir.values():
        for a in group:
            for b in group:
                if a != b:
                    edges[a].add(b)
    return edges


def _display_dir(display: str) -> str:
    return display.rsplit("/", 1)[0] if "/" in display else "."


def imported_modules(tree: ast.Module) -> Set[str]:
    """Every dotted module path a module imports (absolute imports)."""
    modules: Set[str] = set()
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for name in node.names:
                modules.add(name.name)
        elif isinstance(node, ast.ImportFrom) and node.module and node.level == 0:
            modules.add(node.module)
            for name in node.names:
                if name.name != "*":
                    modules.add(f"{node.module}.{name.name}")
    return modules
