"""reproflow: whole-program dataflow analysis over the reprolint parse forest.

reprolint's first seven rules are syntactic: each looks at one AST shape
at a time.  The invariants that actually protect the reproduction —
"every result-relevant config field reaches a cache key", "numeric
kernels keep explicit widths", "fabric workers only write shared
artifacts under a held lease" — are *flow* properties: they hold or
break along call chains that cross files.  This package is the shared
analysis core those rules (R008/R009/R010) run on:

* :mod:`repro.analysis.flow.symbols` — project symbol table: every
  function/method/class defined in the scanned forest, indexed by
  dotted qualname and by bare name, with import-alias resolution;
* :mod:`repro.analysis.flow.callgraph` — interprocedural call graph
  (resolved call sites, callers-of index) plus the file-level
  dependency graph the incremental mode invalidates along;
* :mod:`repro.analysis.flow.dataflow` — a forward taint graph over
  (variable, call-site, parameter, return) slots; reachability queries
  answer "does this value flow into that sink?" across functions;
* :mod:`repro.analysis.flow.dtypes` — numpy dtype abstract
  interpretation (widths, promotion, platform-default detection);
* :mod:`repro.analysis.flow.incremental` — content-hash keyed per-file
  result cache that re-analyzes only changed files plus their
  dependency closure.

Everything is stdlib-``ast`` only, like the rest of reprolint: the
analyses never import the code they check, so fixture trees and broken
branches lint the same as ``src/repro``.

:func:`program_for` memoizes one :class:`FlowProgram` per
:class:`~repro.analysis.lint.model.Project`, so the three flow rules
share a single symbol table / call graph / taint graph build per run.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.analysis.flow.callgraph import CallGraph, CallSite, file_dependency_graph
from repro.analysis.flow.dataflow import FlowGraph, Node
from repro.analysis.flow.symbols import FunctionInfo, SymbolTable, module_name_for

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (model -> rules -> flow)
    from repro.analysis.lint.model import Project

__all__ = [
    "CallGraph",
    "CallSite",
    "FlowGraph",
    "FlowProgram",
    "FunctionInfo",
    "Node",
    "SymbolTable",
    "file_dependency_graph",
    "module_name_for",
    "program_for",
]


class FlowProgram:
    """The three analysis layers, built once per parse forest."""

    def __init__(self, project: "Project") -> None:
        self.symbols = SymbolTable.build(project.files)
        self.callgraph = CallGraph.build(self.symbols)
        self.graph = FlowGraph.build(self.symbols, self.callgraph)


def program_for(project: "Project") -> FlowProgram:
    """The memoized :class:`FlowProgram` for ``project``.

    Stored on the project instance itself (projects are mutable
    dataclasses, hence unhashable), so the three flow rules share one
    build per lint run and the program dies with the project.
    """
    program = getattr(project, "_flow_program", None)
    if not isinstance(program, FlowProgram):
        program = FlowProgram(project)
        object.__setattr__(project, "_flow_program", program)
    return program
