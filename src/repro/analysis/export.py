"""CSV export of curves and tables.

Experiments can dump their data series for external plotting (gnuplot,
matplotlib, spreadsheets) — the paper's figures are all reproducible from
these files.
"""

from __future__ import annotations

import csv
import io
import os
from typing import Sequence, Union

from repro.analysis.curves import ConfidenceCurve
from repro.analysis.table1 import Table1

PathLike = Union[str, "os.PathLike[str]"]


def curves_to_csv(curves: Sequence[ConfidenceCurve], path: PathLike) -> None:
    """Write curve points as long-form CSV (curve, x, y, bucket, rate)."""
    with open(path, "w", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow(
            ["curve", "dynamic_percent", "misprediction_percent", "bucket", "bucket_rate"]
        )
        for curve in curves:
            for point in curve.points:
                writer.writerow(
                    [
                        curve.name,
                        f"{point.dynamic_percent:.6f}",
                        f"{point.misprediction_percent:.6f}",
                        point.bucket,
                        f"{point.bucket_rate:.6f}",
                    ]
                )


def table_to_csv(table: Table1, path: PathLike) -> None:
    """Write Table 1 rows as CSV."""
    with open(path, "w", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow(
            [
                "count",
                "misprediction_rate",
                "percent_refs",
                "percent_mispredicts",
                "cumulative_percent_refs",
                "cumulative_percent_mispredicts",
            ]
        )
        for row in table.rows:
            writer.writerow(
                [
                    row.count,
                    f"{row.misprediction_rate:.6f}",
                    f"{row.percent_refs:.6f}",
                    f"{row.percent_mispredicts:.6f}",
                    f"{row.cumulative_percent_refs:.6f}",
                    f"{row.cumulative_percent_mispredicts:.6f}",
                ]
            )


def curves_to_string(curves: Sequence[ConfidenceCurve]) -> str:
    """Curve CSV as an in-memory string (for logging or tests)."""
    buffer = io.StringIO()
    writer = csv.writer(buffer)
    writer.writerow(
        ["curve", "dynamic_percent", "misprediction_percent", "bucket", "bucket_rate"]
    )
    for curve in curves:
        for point in curve.points:
            writer.writerow(
                [
                    curve.name,
                    f"{point.dynamic_percent:.6f}",
                    f"{point.misprediction_percent:.6f}",
                    point.bucket,
                    f"{point.bucket_rate:.6f}",
                ]
            )
    return buffer.getvalue()
