"""``python -m repro.analysis`` — run the ``reprolint`` checker.

Identical to ``repro lint``; exists so the linter is reachable without
installing the console script (CI images, fresh checkouts).
"""

from __future__ import annotations

import sys

from repro.analysis.lint.cli import main

if __name__ == "__main__":
    sys.exit(main())
