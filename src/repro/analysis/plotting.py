"""ASCII rendering of confidence curves.

The experiments run headless; the CLI and examples render curves as
terminal plots in the spirit of the paper's figures, plus tabular
summaries at reference x-positions (the paper repeatedly quotes the 20 %
point).
"""

from __future__ import annotations

from typing import Dict, List, Sequence

from repro.analysis.curves import ConfidenceCurve
from repro.analysis.metrics import ConfusionCounts

_MARKERS = "*o+x#@%&"


def ascii_curve_plot(
    curves: Sequence[ConfidenceCurve],
    width: int = 64,
    height: int = 20,
    title: str = "",
) -> str:
    """Render curves on a ``width`` x ``height`` character grid.

    X axis: % of dynamic branches (0-100); Y axis: % of mispredictions
    (0-100).  Later curves overwrite earlier ones where they collide.
    """
    if not curves:
        raise ValueError("need at least one curve to plot")
    if width < 16 or height < 8:
        raise ValueError("plot area too small (min 16x8)")
    grid = [[" "] * width for _ in range(height)]

    def cell(x_percent: float, y_percent: float) -> "tuple[int, int]":
        column = min(width - 1, int(round(x_percent / 100.0 * (width - 1))))
        row = min(height - 1, int(round(y_percent / 100.0 * (height - 1))))
        return height - 1 - row, column

    for curve_index, curve in enumerate(curves):
        marker = _MARKERS[curve_index % len(_MARKERS)]
        # Sample the interpolated curve at every column for a continuous
        # line, then overlay actual data points.
        for column in range(width):
            x_percent = 100.0 * column / (width - 1)
            y_percent = curve.mispredictions_captured_at(x_percent)
            row, col = cell(x_percent, y_percent)
            if grid[row][col] == " ":
                grid[row][col] = marker
        for point in curve.sparsified().points:
            row, col = cell(point.dynamic_percent, point.misprediction_percent)
            grid[row][col] = marker

    lines: List[str] = []
    if title:
        lines.append(title)
    legend = "   ".join(
        f"{_MARKERS[i % len(_MARKERS)]} {curve.name or f'curve{i}'}"
        for i, curve in enumerate(curves)
    )
    lines.append(legend)
    lines.append("% mispredictions")
    lines.append("100 +" + "-" * width + "+")
    for row_index, row in enumerate(grid):
        prefix = "    |"
        if row_index == height - 1:
            prefix = "  0 |"
        lines.append(prefix + "".join(row) + "|")
    lines.append("    +" + "-" * width + "+")
    lines.append("    0" + " " * (width - 10) + "100")
    lines.append("     % of dynamic branches")
    return "\n".join(lines)


def format_curve_table(
    curves: Sequence[ConfidenceCurve],
    x_positions: Sequence[float] = (5.0, 10.0, 20.0, 30.0, 50.0),
) -> str:
    """Tabulate interpolated curve values at reference x positions."""
    header_cells = ["method".ljust(28)] + [f"@{x:g}%".rjust(8) for x in x_positions]
    lines = ["".join(header_cells)]
    for curve in curves:
        cells = [(curve.name or "<curve>").ljust(28)]
        for x_percent in x_positions:
            cells.append(f"{curve.mispredictions_captured_at(x_percent):8.1f}")
        lines.append("".join(cells))
    return "\n".join(lines)


def format_metric_summary(metrics_by_name: Dict[str, ConfusionCounts]) -> str:
    """Render SENS/SPEC/PVP/PVN rows per mechanism.

    ``metrics_by_name`` maps a mechanism name to a
    :class:`repro.analysis.metrics.ConfusionCounts`.
    """
    lines = [
        "method".ljust(28)
        + "lowfrac".rjust(9)
        + "SENS".rjust(8)
        + "SPEC".rjust(8)
        + "PVP".rjust(8)
        + "PVN".rjust(8)
    ]
    for name, counts in metrics_by_name.items():
        lines.append(
            name.ljust(28)
            + f"{counts.low_fraction:9.3f}"
            + f"{counts.sensitivity:8.3f}"
            + f"{counts.specificity:8.3f}"
            + f"{counts.predictive_value_positive:8.3f}"
            + f"{counts.predictive_value_negative:8.3f}"
        )
    return "\n".join(lines)
