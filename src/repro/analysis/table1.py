"""Table 1: statistics for resetting counter values.

The paper's Table 1 lists, for each resetting-counter value 0..16 of the
best one-level method (PC xor BHR index, 0..16 resetting counters):

==========  ============================================================
column      meaning
==========  ============================================================
count       the counter value (0 least confident, 16 saturated)
mispred.    misprediction rate of predictions made at this counter value
% refs      percent of all references (dynamic branches) at this value
% mispreds  percent of all mispredictions at this value
cum % refs  cumulative references, from the top of the table (count 0)
cum % mis.  cumulative mispredictions, from the top of the table
==========  ============================================================
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from repro.analysis.buckets import BucketStatistics


@dataclass(frozen=True)
class Table1Row:
    """One counter value's statistics."""

    count: int
    misprediction_rate: float
    percent_refs: float
    percent_mispredicts: float
    cumulative_percent_refs: float
    cumulative_percent_mispredicts: float


@dataclass(frozen=True)
class Table1:
    """The full resetting-counter table."""

    rows: List[Table1Row]

    def row(self, count: int) -> Table1Row:
        """The row for counter value ``count``."""
        for row in self.rows:
            if row.count == count:
                return row
        raise KeyError(f"no row for counter value {count}")

    def low_confidence_split(self, max_count: int) -> "tuple[float, float]":
        """(percent refs, percent mispredictions) isolated by treating
        counter values 0..``max_count`` as low confidence.

        The paper's reading of the table: "if we use counter values from
        0 to 15, we can isolate 89.3 percent of the mispredictions to a
        set of 20.3 percent of the branches".
        """
        row = self.row(max_count)
        return row.cumulative_percent_refs, row.cumulative_percent_mispredicts

    def format(self) -> str:
        """Render in the paper's layout."""
        header = (
            f"{'Count':>5}  {'Mispred.':>9}  {'% Refs':>7}  {'% Mis-':>7}  "
            f"{'Cum.%':>7}  {'Cum.%':>7}\n"
            f"{'':>5}  {'rate':>9}  {'':>7}  {'preds.':>7}  "
            f"{'Refs':>7}  {'Mispreds.':>9}\n"
        )
        lines = [header]
        for row in self.rows:
            lines.append(
                f"{row.count:>5}  {row.misprediction_rate:>9.3f}  "
                f"{row.percent_refs:>7.2f}  {row.percent_mispredicts:>7.2f}  "
                f"{row.cumulative_percent_refs:>7.1f}  "
                f"{row.cumulative_percent_mispredicts:>9.1f}"
            )
        return "\n".join(lines)


def build_table1(statistics: BucketStatistics) -> Table1:
    """Build Table 1 from resetting-counter bucket statistics.

    ``statistics`` must be bucketed by counter value (0..maximum); rows
    appear in counter order, 0 first, matching the paper.
    """
    total = statistics.total
    total_mispredicts = statistics.total_mispredicts
    if total == 0:
        raise ValueError("cannot build Table 1 from empty statistics")
    rows: List[Table1Row] = []
    cumulative_refs = 0.0
    cumulative_mispredicts = 0.0
    for count in range(statistics.num_buckets):
        executions = float(statistics.counts[count])
        mispredicts = float(statistics.mispredicts[count])
        percent_refs = 100.0 * executions / total
        percent_mispredicts = (
            100.0 * mispredicts / total_mispredicts if total_mispredicts else 0.0
        )
        cumulative_refs += percent_refs
        cumulative_mispredicts += percent_mispredicts
        rows.append(
            Table1Row(
                count=count,
                misprediction_rate=mispredicts / executions if executions else 0.0,
                percent_refs=percent_refs,
                percent_mispredicts=percent_mispredicts,
                cumulative_percent_refs=cumulative_refs,
                cumulative_percent_mispredicts=cumulative_mispredicts,
            )
        )
    return Table1(rows)
