"""Cross-benchmark combination (the paper's weighting rule).

"We arrive at composite data for the collection of benchmarks by
averaging.  We do this by weighting the results so that each benchmark,
in effect, executes the same number of conditional branches."

Concretely: each benchmark's bucket statistics are normalized to unit
total executions, then summed.  The combined statistics can be fed to the
curve/table builders exactly like single-benchmark ones.
"""

from __future__ import annotations

from typing import Mapping, Sequence, Union

import numpy as np

from repro.analysis.buckets import BucketStatistics

StatisticsCollection = Union[
    Mapping[str, BucketStatistics], Sequence[BucketStatistics]
]


def equal_weight_combine(collection: StatisticsCollection) -> BucketStatistics:
    """Combine per-benchmark statistics with equal dynamic-branch weight.

    Accepts a mapping (benchmark name -> statistics) or a plain sequence.
    Benchmarks with zero executions are skipped (they carry no weight).
    """
    if isinstance(collection, Mapping):
        items = list(collection.values())
    else:
        items = list(collection)
    if not items:
        raise ValueError("cannot combine an empty statistics collection")
    sizes = {stats.num_buckets for stats in items}
    if len(sizes) != 1:
        raise ValueError(f"statistics have differing bucket counts: {sorted(sizes)}")
    combined = BucketStatistics.zeros(items[0].num_buckets)
    for stats in items:
        if stats.total == 0:
            continue
        combined = combined + stats.normalized()
    return combined


def concat_normalized(collection: StatisticsCollection) -> BucketStatistics:
    """Concatenate per-benchmark statistics into one disjoint bucket space,
    each benchmark normalized to unit executions.

    Used when buckets are *per-benchmark identities* rather than shared
    values — e.g. static branches: the paper "combines the branches for
    all the benchmarks and normalizes them so that each benchmark
    effectively contributes the same number of dynamic branches", then
    sorts the whole population.  Bucket ids are offset per benchmark;
    the resulting statistics are only meaningful through empirical
    (sorted) curve construction.
    """
    if isinstance(collection, Mapping):
        items = list(collection.values())
    else:
        items = list(collection)
    if not items:
        raise ValueError("cannot combine an empty statistics collection")
    counts = []
    mispredicts = []
    for stats in items:
        normalized = stats.normalized()
        counts.append(normalized.counts)
        mispredicts.append(normalized.mispredicts)
    return BucketStatistics(np.concatenate(counts), np.concatenate(mispredicts))
