"""Confidence quality metrics.

The paper evaluates mechanisms via curves; the follow-on literature
(Grunwald, Klauser, Manne & Pleszkun, "Confidence Estimation for
Speculation Control", ISCA 1998) distilled the same information into four
standard metrics over the 2x2 contingency of (confidence signal x
prediction correctness).  They are provided here both as extra validation
of this reproduction and because the application models in
:mod:`repro.apps` are naturally expressed with them.

With HC/LC = high/low confidence and C/I = correct/incorrect prediction:

* **SENS** (sensitivity)  = LC∧I / I — fraction of mispredictions flagged
  low confidence (the y-axis of the paper's curves, as a fraction);
* **SPEC** (specificity)  = HC∧C / C — fraction of correct predictions
  flagged high confidence;
* **PVP** (predictive value of a positive) = HC∧C / HC — accuracy of the
  high-confidence set;
* **PVN** (predictive value of a negative) = LC∧I / LC — misprediction
  rate of the low-confidence set.  The reverser application needs
  PVN > 0.5 to profit.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable

from repro.analysis.buckets import BucketStatistics


@dataclass(frozen=True)
class ConfusionCounts:
    """The 2x2 contingency of confidence signal versus correctness."""

    high_correct: float
    high_incorrect: float
    low_correct: float
    low_incorrect: float

    def __post_init__(self) -> None:
        for label in ("high_correct", "high_incorrect", "low_correct", "low_incorrect"):
            if getattr(self, label) < 0:
                raise ValueError(f"{label} must be non-negative")

    @property
    def total(self) -> float:
        return (
            self.high_correct
            + self.high_incorrect
            + self.low_correct
            + self.low_incorrect
        )

    @property
    def low_fraction(self) -> float:
        """Fraction of dynamic branches flagged low confidence."""
        total = self.total
        return (self.low_correct + self.low_incorrect) / total if total else 0.0

    @property
    def sensitivity(self) -> float:
        """SENS: fraction of mispredictions flagged low confidence."""
        incorrect = self.high_incorrect + self.low_incorrect
        return self.low_incorrect / incorrect if incorrect else 0.0

    @property
    def specificity(self) -> float:
        """SPEC: fraction of correct predictions flagged high confidence."""
        correct = self.high_correct + self.low_correct
        return self.high_correct / correct if correct else 0.0

    @property
    def predictive_value_positive(self) -> float:
        """PVP: accuracy within the high-confidence set."""
        high = self.high_correct + self.high_incorrect
        return self.high_correct / high if high else 0.0

    @property
    def predictive_value_negative(self) -> float:
        """PVN: misprediction rate within the low-confidence set."""
        low = self.low_correct + self.low_incorrect
        return self.low_incorrect / low if low else 0.0


def confidence_metrics(
    statistics: BucketStatistics, low_buckets: Iterable[int]
) -> ConfusionCounts:
    """Collapse bucket statistics into a confusion table for a threshold.

    ``low_buckets`` is the set of buckets treated as low confidence
    (typically from
    :meth:`repro.analysis.curves.ConfidenceCurve.low_confidence_buckets`).
    """
    low = frozenset(low_buckets)
    out_of_range = [b for b in low if not 0 <= b < statistics.num_buckets]
    if out_of_range:
        raise ValueError(f"low buckets out of range: {sorted(out_of_range)}")
    low_correct = low_incorrect = 0.0
    high_correct = high_incorrect = 0.0
    for bucket in range(statistics.num_buckets):
        executions = float(statistics.counts[bucket])
        if executions == 0:
            continue
        mispredicts = float(statistics.mispredicts[bucket])
        corrects = executions - mispredicts
        if bucket in low:
            low_correct += corrects
            low_incorrect += mispredicts
        else:
            high_correct += corrects
            high_incorrect += mispredicts
    return ConfusionCounts(high_correct, high_incorrect, low_correct, low_incorrect)
