"""Fault-tolerant process-pool mapping.

:func:`resilient_map` is the execution layer under every parallel
fan-out in the repo (predictor sweeps in
:mod:`repro.experiments.runner`, whole experiments in
:mod:`repro.experiments.registry`).  It preserves the deterministic
contract of the plain ``pool.map`` it replaces — results come back in
payload order, byte-identical to a serial run — while surviving the
failure modes a long multi-benchmark run actually hits:

* a **crashed worker** (``BrokenProcessPool``) rebuilds the pool and
  re-runs only the tasks that did not finish; repeated pool loss
  degrades to computing the remainder serially in the parent;
* a **slow or hung task** is bounded by ``task_timeout`` seconds and
  retried; on retry exhaustion it, too, falls back to the serial path
  (which always completes deterministically);
* a **failing task** (exception raised in the worker) is retried with
  exponential backoff up to ``max_retries`` times, after which the
  original error is re-raised — deterministic errors abort instead of
  looping forever.

Every decision is counted through :mod:`repro.observability`
(``pool.started``, ``pool.broken``, ``tasks.timed_out``,
``retries.attempted``, ``degraded.serial_fallback``), so a ``--profile``
export shows exactly how a degraded run got its results.
"""

from __future__ import annotations

import time
from typing import Any, Callable, Dict, List, Optional, Sequence, TypeVar

from repro import observability
from repro.testing import faults

T = TypeVar("T")

#: Base of the exponential retry backoff (seconds).
RETRY_BACKOFF_SECONDS = 0.05

#: Longest single backoff sleep (seconds).
MAX_BACKOFF_SECONDS = 2.0

#: Pool rebuilds tolerated before degrading the remainder to serial.
MAX_POOL_REBUILDS = 2


def retry_call(
    run: Callable[[], T],
    *,
    max_retries: int,
    retry_on: "tuple[type[BaseException], ...]" = (Exception,),
    backoff_seconds: float = RETRY_BACKOFF_SECONDS,
    max_backoff_seconds: float = MAX_BACKOFF_SECONDS,
) -> T:
    """Run ``run`` with the pool tasks' retry/backoff semantics, in-process.

    This is the cross-shard face of the retry taxonomy: a fabric worker
    computing a claimed work unit is one process with no pool underneath,
    but its failure handling must match :func:`resilient_map` — bounded
    retries with exponential backoff, counted through the same
    ``retries.attempted`` counter, and the original error re-raised once
    retries are exhausted (a crashed shard's lease then goes stale and a
    peer takes the unit over, which is the fabric's equivalent of the
    pool rebuild).
    """
    attempt = 0
    while True:
        try:
            return run()
        except retry_on:
            if attempt >= max_retries:
                raise
            observability.increment("retries.attempted")
            delay = backoff_seconds * (2 ** attempt)
            time.sleep(min(delay, max_backoff_seconds))
            attempt += 1


def serial_task(task_key: str, run: Callable[[], T]) -> T:
    """Run one degraded-serial task with pool-worker metrics parity.

    A pool worker starts from a clean metrics registry, runs the fault
    hooks, and ships its snapshot back for exactly one merge into the
    parent.  The in-parent serial fallback must look identical to
    ``--profile`` consumers, so this helper reproduces that lifecycle
    in-process: parent counters are set aside (never bleeding into the
    task's delta), the serial fault hooks run, and the task's own delta
    is merged back alongside the restored parent state.  A failing task
    merges nothing — matching a worker that died before reporting.
    """
    parent = observability.snapshot()
    observability.reset_metrics()
    delta = None
    try:
        faults.inject_serial_faults(task_key)
        result = run()
        delta = observability.snapshot()
        return result
    finally:
        observability.reset_metrics()
        observability.merge_snapshot(parent)
        if delta is not None:
            observability.merge_snapshot(delta)


def resilient_map(
    worker: Callable,
    payloads: Sequence,
    *,
    jobs: int,
    serial_worker: Callable,
    max_retries: int = 2,
    task_timeout: Optional[float] = None,
) -> List[Any]:
    """Map ``worker`` over ``payloads`` on a process pool, tolerating faults.

    ``worker`` is a picklable module-level function returning a
    ``(result, metrics_snapshot)`` pair; snapshots of successful tasks
    are merged into the parent registry exactly once.  ``serial_worker``
    computes the same result in the parent process (no pool, no metrics
    pair) and is the degraded path of last resort, so the returned list
    always matches a serial run in content and order.
    """
    results: List[Any] = [None] * len(payloads)
    done: List[bool] = [False] * len(payloads)
    attempts: Dict[int, int] = {}
    errors: Dict[int, BaseException] = {}
    last_failure: Dict[int, str] = {}
    pending = list(range(len(payloads)))
    pool_breaks = 0

    from concurrent.futures import ProcessPoolExecutor
    from concurrent.futures import TimeoutError as FuturesTimeout
    from concurrent.futures.process import BrokenProcessPool

    while pending:
        if pool_breaks > MAX_POOL_REBUILDS:
            # The pool keeps dying; compute the remainder in-process.
            observability.increment("degraded.serial_fallback", len(pending))
            for index in pending:
                results[index] = serial_worker(payloads[index])
                done[index] = True
            break
        broken = False
        retry: List[int] = []
        observability.increment("pool.started")
        pool = ProcessPoolExecutor(max_workers=max(1, min(jobs, len(pending))))
        try:
            futures = [(index, pool.submit(worker, payloads[index])) for index in pending]
            for index, future in futures:
                try:
                    result, metrics = future.result(timeout=task_timeout)
                except FuturesTimeout:
                    observability.increment("tasks.timed_out")
                    future.cancel()
                    retry.append(index)
                    last_failure[index] = "timeout"
                except BrokenProcessPool:
                    # The pool is gone, but futures that completed before
                    # the break still hold results — keep draining.
                    if not broken:
                        observability.increment("pool.broken")
                        broken = True
                except Exception as error:  # noqa: BLE001 - retried, then re-raised
                    retry.append(index)
                    errors[index] = error
                    last_failure[index] = "error"
                else:
                    observability.merge_snapshot(metrics)
                    results[index] = result
                    done[index] = True
        finally:
            # Never block on stragglers (e.g. a task that timed out but is
            # still running); abandoned workers finish or die on their own.
            pool.shutdown(wait=False, cancel_futures=True)
        if broken:
            pool_breaks += 1
            pending = [index for index in pending if not done[index]]
            continue
        next_pending: List[int] = []
        for index in retry:
            attempts[index] = attempts.get(index, 0) + 1
            if attempts[index] <= max_retries:
                observability.increment("retries.attempted")
                next_pending.append(index)
            elif last_failure[index] == "timeout":
                # Slow is not wrong: the serial path has no deadline.
                observability.increment("degraded.serial_fallback")
                results[index] = serial_worker(payloads[index])
                done[index] = True
            else:
                raise errors[index]
        pending = next_pending
        if pending:
            worst = max(attempts[index] for index in pending)
            delay = RETRY_BACKOFF_SECONDS * (2 ** (worst - 1))
            time.sleep(min(delay, MAX_BACKOFF_SECONDS))
    return results
