"""Bit manipulation helpers.

The confidence tables and branch predictors in this library operate on
fixed-width bit fields: program-counter slices, branch-history registers,
and Correct/Incorrect Registers (CIRs).  The helpers here centralize the
masking, counting, and folding operations so the higher layers read like
the paper's prose rather than like bit twiddling.
"""

from __future__ import annotations


def bit_mask(width: int) -> int:
    """Return a mask with the ``width`` low bits set.

    >>> bit_mask(4)
    15
    >>> bit_mask(0)
    0
    """
    if width < 0:
        raise ValueError(f"width must be non-negative, got {width}")
    return (1 << width) - 1


def extract_bits(value: int, low: int, high: int) -> int:
    """Return bits ``high:low`` (inclusive) of ``value``, right-justified.

    The bit numbering follows the paper's convention: the gshare predictor
    is indexed with "bits 17 through 2 of the program counter", i.e.
    ``extract_bits(pc, 2, 17)``.

    >>> extract_bits(0b101100, 2, 4)
    3
    """
    if low < 0:
        raise ValueError(f"low must be non-negative, got {low}")
    if high < low:
        raise ValueError(f"high ({high}) must be >= low ({low})")
    return (value >> low) & bit_mask(high - low + 1)


def popcount(value: int) -> int:
    """Count set bits — the paper's "ones count" reduction primitive.

    >>> popcount(0b1011)
    3
    """
    if value < 0:
        raise ValueError(f"popcount requires a non-negative value, got {value}")
    return bin(value).count("1")


def lowest_set_bit(value: int) -> int:
    """Return the index of the lowest set bit, or -1 when ``value`` is 0.

    With the library's CIR convention (bit 0 = most recent prediction,
    1 = incorrect), the lowest set bit of a CIR is the number of correct
    predictions since the most recent misprediction — exactly the value a
    resetting counter tracks (until it saturates).

    >>> lowest_set_bit(0b1000)
    3
    >>> lowest_set_bit(0)
    -1
    """
    if value < 0:
        raise ValueError(f"lowest_set_bit requires non-negative value, got {value}")
    if value == 0:
        return -1
    return (value & -value).bit_length() - 1


def reverse_bits(value: int, width: int) -> int:
    """Reverse the low ``width`` bits of ``value``.

    Used when rendering CIR contents in the paper's left-to-right
    oldest-to-newest textual convention.

    >>> bin(reverse_bits(0b0001, 4))
    '0b1000'
    """
    if width < 0:
        raise ValueError(f"width must be non-negative, got {width}")
    result = 0
    for i in range(width):
        if value & (1 << i):
            result |= 1 << (width - 1 - i)
    return result


def xor_fold(value: int, width: int) -> int:
    """Fold an arbitrarily wide value into ``width`` bits by XOR.

    Successive ``width``-bit chunks are XORed together.  Used to squeeze
    wide index sources (e.g. a long global CIR) into small table indices.

    >>> xor_fold(0b1010_0110, 4)
    12
    """
    if width <= 0:
        raise ValueError(f"width must be positive, got {width}")
    mask = bit_mask(width)
    folded = 0
    while value:
        folded ^= value & mask
        value >>= width
    return folded


def is_power_of_two(value: int) -> bool:
    """Return True when ``value`` is a positive power of two.

    >>> is_power_of_two(4096)
    True
    >>> is_power_of_two(12)
    False
    """
    return value > 0 and (value & (value - 1)) == 0


def log2_exact(value: int) -> int:
    """Return log2 of a power of two; raise otherwise.

    Table sizes throughout the library are powers of two (they are indexed
    by bit fields), so a fractional log is always a configuration error.
    """
    if not is_power_of_two(value):
        raise ValueError(f"expected a power of two, got {value}")
    return value.bit_length() - 1
