"""Run-length helpers for outcome streams.

Trace statistics report the distribution of taken/not-taken runs, which is
the natural fingerprint of loop-dominated branch behaviour and is used to
sanity-check the synthetic workloads against their configured trip counts.
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

import numpy as np


def runs(values: Sequence[int]) -> List[Tuple[int, int]]:
    """Return ``(value, length)`` pairs for consecutive runs.

    >>> runs([1, 1, 0, 1, 1, 1])
    [(1, 2), (0, 1), (1, 3)]
    >>> runs([])
    []
    """
    array = np.asarray(values)
    if array.size == 0:
        return []
    change_points = np.flatnonzero(array[1:] != array[:-1]) + 1
    starts = np.concatenate(([0], change_points))
    ends = np.concatenate((change_points, [array.size]))
    return [(int(array[s]), int(e - s)) for s, e in zip(starts, ends)]


def run_lengths(values: Sequence[int], of_value: int) -> List[int]:
    """Return the lengths of runs equal to ``of_value``.

    >>> run_lengths([1, 1, 0, 1, 1, 1], of_value=1)
    [2, 3]
    """
    return [length for value, length in runs(values) if value == of_value]
