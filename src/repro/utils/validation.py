"""Uniform argument validation.

The public API surfaces of the predictors, confidence tables, and workload
models share a small vocabulary of constraints (power-of-two table sizes,
probabilities, positive widths).  Validating through one module keeps error
messages consistent and the call sites one line long.
"""

from __future__ import annotations

from repro.utils.bits import is_power_of_two


def check_positive(value: int, name: str) -> int:
    """Raise ``ValueError`` unless ``value`` > 0; return it otherwise."""
    if value <= 0:
        raise ValueError(f"{name} must be positive, got {value}")
    return value


def check_non_negative(value: int, name: str) -> int:
    """Raise ``ValueError`` unless ``value`` >= 0; return it otherwise."""
    if value < 0:
        raise ValueError(f"{name} must be non-negative, got {value}")
    return value


def check_power_of_two(value: int, name: str) -> int:
    """Raise ``ValueError`` unless ``value`` is a positive power of two."""
    if not is_power_of_two(value):
        raise ValueError(f"{name} must be a positive power of two, got {value}")
    return value


def check_probability(value: float, name: str) -> float:
    """Raise ``ValueError`` unless ``0.0 <= value <= 1.0``."""
    if not 0.0 <= value <= 1.0:
        raise ValueError(f"{name} must be within [0, 1], got {value}")
    return value


def check_in_range(value: int, low: int, high: int, name: str) -> int:
    """Raise ``ValueError`` unless ``low <= value <= high`` (inclusive)."""
    if not low <= value <= high:
        raise ValueError(f"{name} must be within [{low}, {high}], got {value}")
    return value
