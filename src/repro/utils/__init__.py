"""Low-level utilities shared across the library.

Submodules
----------
bits
    Bit manipulation helpers (masks, popcount, xor folding) used by the
    predictors and confidence tables.
rng
    Deterministic random-stream helpers so every stochastic component of the
    workload substrate is reproducible from an explicit seed.
runlength
    Run-length encoding helpers used by trace statistics.
validation
    Argument-checking helpers that raise uniform, descriptive errors.
"""

from repro.utils.bits import (
    bit_mask,
    extract_bits,
    is_power_of_two,
    log2_exact,
    lowest_set_bit,
    popcount,
    reverse_bits,
    xor_fold,
)
from repro.utils.rng import derive_seed, make_rng, split_rng
from repro.utils.runlength import run_lengths, runs
from repro.utils.validation import (
    check_in_range,
    check_non_negative,
    check_positive,
    check_power_of_two,
    check_probability,
)

__all__ = [
    "bit_mask",
    "extract_bits",
    "is_power_of_two",
    "log2_exact",
    "lowest_set_bit",
    "popcount",
    "reverse_bits",
    "xor_fold",
    "derive_seed",
    "make_rng",
    "split_rng",
    "run_lengths",
    "runs",
    "check_in_range",
    "check_non_negative",
    "check_positive",
    "check_power_of_two",
    "check_probability",
]
