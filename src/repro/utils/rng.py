"""Deterministic random-stream helpers.

Every stochastic component in the workload substrate draws from a
``numpy.random.Generator`` created through these helpers, so a benchmark
trace is a pure function of its name, seed, and length.  Seeds for
sub-components are *derived* (hashed) rather than incremented, so adding a
new branch site to a synthetic program does not shift the randomness seen
by existing sites.
"""

from __future__ import annotations

import hashlib
from typing import Iterator, Union

import numpy as np

Seedable = Union[int, str]

_MASK64 = (1 << 64) - 1


def derive_seed(*components: Seedable) -> int:
    """Derive a stable 64-bit seed from a sequence of components.

    Components may be ints or strings; they are hashed with SHA-256 so the
    derivation is stable across Python processes and versions (unlike
    ``hash()``, which is salted).

    >>> derive_seed("gcc", 0) == derive_seed("gcc", 0)
    True
    >>> derive_seed("gcc", 0) != derive_seed("gcc", 1)
    True
    """
    digest = hashlib.sha256()
    for component in components:
        if isinstance(component, bool) or not isinstance(component, (int, str)):
            raise TypeError(
                f"seed components must be int or str, got {type(component).__name__}"
            )
        digest.update(repr(component).encode("utf-8"))
        digest.update(b"\x00")
    return int.from_bytes(digest.digest()[:8], "little") & _MASK64


def make_rng(*components: Seedable) -> np.random.Generator:
    """Create a ``numpy`` Generator seeded from the given components."""
    return np.random.default_rng(derive_seed(*components))


def split_rng(*components: Seedable, count: int = 2) -> Iterator[np.random.Generator]:
    """Yield ``count`` independent generators derived from the components.

    >>> a, b = split_rng("suite", count=2)
    >>> bool(a.integers(0, 2**32) != b.integers(0, 2**32))
    True
    """
    if count < 1:
        raise ValueError(f"count must be >= 1, got {count}")
    for index in range(count):
        yield make_rng(*components, index)
