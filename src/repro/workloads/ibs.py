"""The synthetic IBS-style benchmark suite.

Eight benchmarks named after the IBS (Instruction Benchmark Suite, Mach
version) programs the paper simulates.  Each is a synthetic program built
from the behaviour models in :mod:`repro.workloads.behaviors`; the mixes
give each benchmark a distinct "personality" mirroring what is known of
the originals:

========== ===========================================================
benchmark   personality (branch population emphasis)
========== ===========================================================
gcc         very many static branches, data-dependent & hard — the
            suite's worst predictability (paper Fig. 9 worst case)
gs          interpreter dispatch: correlated branches with noise
jpeg_play   fixed-trip DCT-style kernels, few hard branches — the
            suite's best predictability (paper Fig. 9 best case)
mpeg_play   loop kernels plus bursty (Markov) motion-dependent branches
nroff       text processing: periodic per-branch patterns
sdet        multi-process system workload: phase changes + hard branches
verilog     event-driven simulation: context-dependent branches
video_play  streaming playback: regular loops, strongly biased checks
========== ===========================================================

Benchmark programs are deterministic given (name, seed); generated traces
are memoized, since every experiment reuses the same suite.
"""

from __future__ import annotations

import functools
from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

from repro.traces.trace import Trace
from repro.utils.rng import make_rng
from repro.workloads.behaviors import (
    BiasedBehavior,
    BranchBehavior,
    ContextDependentBehavior,
    CorrelatedBehavior,
    MarkovBehavior,
    PatternBehavior,
    PhasedBehavior,
    TripSource,
)
from repro.workloads.program import Block, Emit, If, Loop, Site, SyntheticProgram

#: Default dynamic branches per benchmark in the experiment suite.  The
#: paper runs full IBS traces (tens of millions); 160k per benchmark keeps
#: every table-warmup effect visible while remaining laptop-friendly.
DEFAULT_TRACE_LENGTH = 160_000


class _Layout:
    """Deterministic code-layout allocator for branch-site PCs.

    Sites are placed at increasing 4-byte-aligned addresses with small
    pseudo-random gaps, starting from a per-benchmark base, within an
    18-bit code region (matching the paper's PC bits 17..2 index field).
    """

    _REGION_BITS = 18

    def __init__(self, benchmark: str) -> None:
        self._rng = make_rng("layout", benchmark)
        base = int(self._rng.integers(0, 1 << self._REGION_BITS)) & ~0x3
        self._next_pc = base
        self._used: set = set()

    def place(self) -> int:
        """Allocate the next site address."""
        while True:
            gap = int(self._rng.integers(1, 16)) * 4
            self._next_pc = (self._next_pc + gap) % (1 << self._REGION_BITS)
            if self._next_pc not in self._used:
                self._used.add(self._next_pc)
                return self._next_pc


@dataclass(frozen=True)
class CategoryWeights:
    """Leaf-site category proportions for one benchmark."""

    easy: float = 0.0
    medium: float = 0.0
    hard: float = 0.0
    correlated: float = 0.0
    context: float = 0.0
    pattern: float = 0.0
    markov: float = 0.0
    phased: float = 0.0

    def as_pairs(self) -> List[Tuple[str, float]]:
        pairs = [
            ("easy", self.easy),
            ("medium", self.medium),
            ("hard", self.hard),
            ("correlated", self.correlated),
            ("context", self.context),
            ("pattern", self.pattern),
            ("markov", self.markov),
            ("phased", self.phased),
        ]
        total = sum(weight for _, weight in pairs)
        if total <= 0:
            raise ValueError("category weights must sum to a positive value")
        return [(name, weight / total) for name, weight in pairs]


@dataclass(frozen=True)
class BenchmarkConfig:
    """Shape and mix parameters of one synthetic benchmark.

    Tuning note: the dominant driver of the aggregate misprediction rate
    is not the per-branch bias alone but the *entropy injected into the
    global history*.  Every random outcome bit multiplies the number of
    BHR contexts every nearby branch is seen under, and cold contexts
    mispredict.  The bands below are therefore strongly biased by
    default; "hard" branches are the deliberate, concentrated exception.
    """

    name: str
    regions: int
    loops_per_region: int
    leaves_per_loop: int
    #: Inclusive per-site fixed trip-count band for *tight* inner loops.
    #: Keep trips x (leaves+1) within the 16-branch history window, or the
    #: loop exit becomes irreducibly unpredictable for gshare.
    loop_trip_band: Tuple[int, int]
    #: Fraction of inner loops whose trip count varies dynamically
    #: (uniform within a +/-1 span around the site's base trips) — a
    #: deliberate mid-rate misprediction source (unpredictable exits).
    variable_trip_fraction: float
    weights: CategoryWeights
    #: Fraction of inner loops that are long-running kernels (exit
    #: mispredictions amortized over many predictable iterations).
    kernel_loop_fraction: float = 0.25
    #: Trip-count band for kernel loops.
    kernel_trip_band: Tuple[int, int] = (24, 80)
    #: Bernoulli noise on correlated branches.  Keep small: independent
    #: rare flips spawn rarely-revisited history contexts ("novelty
    #: bombs"), unlike frequent 50/50 randomness which trains both
    #: context variants.
    correlated_noise: float = 0.006
    #: Taken-probability band for hard branches.
    hard_band: Tuple[float, float] = (0.38, 0.62)
    #: Taken-probability band for easy biased branches (mirrored around 0/1).
    easy_band: Tuple[float, float] = (0.0005, 0.004)
    #: Taken-probability band for medium biased branches (mirrored).  These
    #: carry a steady per-site misprediction rate that *static* profiling
    #: separates but history-based confidence largely cannot (their flips
    #: are independent), reproducing the paper's static-curve shape.
    medium_band: Tuple[float, float] = (0.03, 0.12)
    #: Switch-rate band for Markov (bursty) branches — the mid-rate knob.
    #: Low switch rates mean long runs: mispredictions cluster at run
    #: boundaries, which recent-history confidence exploits.
    markov_switch_band: Tuple[float, float] = (0.02, 0.07)
    phase_length: int = 3000
    region_guard_p_taken: float = 0.995


class _SiteFactory:
    """Builds leaf sites of each category with deterministic parameters."""

    def __init__(self, config: BenchmarkConfig, layout: _Layout) -> None:
        self._config = config
        self._layout = layout
        self._rng = make_rng("mix", config.name)
        self._counter = 0
        self._weighted = config.weights.as_pairs()

    def _next_name(self, category: str) -> str:
        self._counter += 1
        return f"{self._config.name}.{category}{self._counter}"

    def pick_category(self) -> str:
        roll = float(self._rng.random())
        accumulated = 0.0
        for name, weight in self._weighted:
            accumulated += weight
            if roll < accumulated:
                return name
        return self._weighted[-1][0]

    def make_leaf(self, category: str, neighbors: Sequence[str]) -> Site:
        """Create a leaf site; ``neighbors`` are earlier sites in the same
        loop body, used as correlation sources."""
        behavior = self._make_behavior(category, neighbors)
        return Site(self._next_name(category), self._layout.place(), behavior)

    def _make_behavior(
        self, category: str, neighbors: Sequence[str]
    ) -> BranchBehavior:
        config = self._config
        rng = self._rng
        if category == "easy":
            low, high = config.easy_band
            p_biased = low + (high - low) * float(rng.random())
            # Half the easy branches are mostly-taken, half mostly-not-taken.
            p_taken = p_biased if rng.random() < 0.5 else 1.0 - p_biased
            return BiasedBehavior(p_taken)
        if category == "medium":
            low, high = config.medium_band
            p_biased = low + (high - low) * float(rng.random())
            p_taken = p_biased if rng.random() < 0.5 else 1.0 - p_biased
            return BiasedBehavior(p_taken)
        if category == "hard":
            low, high = config.hard_band
            return BiasedBehavior(low + (high - low) * float(rng.random()))
        if category == "correlated" and neighbors:
            count = 1 + int(rng.integers(0, min(2, len(neighbors))))
            sources = list(neighbors[-count:])
            return CorrelatedBehavior(
                sources,
                noise=config.correlated_noise * (0.5 + float(rng.random())),
                invert=bool(rng.random() < 0.5),
            )
        if category == "context" and neighbors:
            # Prefer a randomizing neighbour (hard/markov) as the source so
            # the "hard context" actually occurs a meaningful fraction of
            # the time; a nearly-constant source would make this branch
            # effectively easy.
            # Prefer a *persistent* randomizing source (markov) so the hard
            # context arrives in runs — clusters of mispredictions are what
            # recent-history confidence mechanisms can see coming.  Fall
            # back to iid-hard, then to whatever executed last.
            markov_sources = [n for n in neighbors if ".markov" in n]
            hard_sources = [n for n in neighbors if ".hard" in n]
            if markov_sources:
                source = markov_sources[-1]
            elif hard_sources:
                source = hard_sources[-1]
            else:
                source = neighbors[-1]
            return ContextDependentBehavior(
                [source],
                p_easy_noise=0.001 + 0.003 * float(rng.random()),
                p_hard=0.45 + 0.1 * float(rng.random()),
            )
        if category == "pattern":
            # Only patterns whose next outcome is determined by the last
            # two of the branch's own outcomes: the global window holds
            # roughly two past executions of a loop-body site, so longer
            # memories (e.g. period-8 runs) would be irreducibly
            # unpredictable.  Power-of-two periods also keep the joint
            # phase space of nearby patterns small.
            pattern = [1, 0] if rng.random() < 0.5 else [1, 1, 0, 0]
            return PatternBehavior(pattern)
        if category == "markov":
            low, high = config.markov_switch_band
            switch_taken = low + (high - low) * float(rng.random())
            switch_not = low + (high - low) * float(rng.random())
            return MarkovBehavior(
                p_stay_taken=1.0 - switch_taken,
                p_stay_not_taken=1.0 - switch_not,
            )
        if category == "phased":
            p_first = 0.005 + 0.02 * float(rng.random())
            return PhasedBehavior(config.phase_length, p_first, 1.0 - p_first)
        # Correlated/context leaves with no earlier neighbour fall back to an
        # easy biased branch (there is nothing to correlate with).
        low, high = config.easy_band
        return BiasedBehavior(low + (high - low) * float(rng.random()))


def build_program(config: BenchmarkConfig) -> SyntheticProgram:
    """Construct the synthetic program for ``config``.

    Structure: a driver loop over ``regions`` guarded regions; each region
    holds ``loops_per_region`` inner loops of ``leaves_per_loop`` leaf
    branches.  Leaf categories are drawn from the configured weights;
    correlated/context leaves use earlier leaves of the same loop body as
    sources, so their correlation is visible in the global history.
    """
    layout = _Layout(config.name)
    factory = _SiteFactory(config, layout)
    trip_rng = make_rng("trips", config.name)
    regions: List[If] = []
    for region_index in range(config.regions):
        loops: List[Loop] = []
        for loop_index in range(config.loops_per_region):
            leaf_nodes: List[Emit] = []
            neighbor_names: List[str] = []
            for _ in range(config.leaves_per_loop):
                category = factory.pick_category()
                site = factory.make_leaf(category, neighbor_names)
                neighbor_names.append(site.name)
                leaf_nodes.append(Emit(site))
            if float(trip_rng.random()) < config.kernel_loop_fraction:
                low, high = config.kernel_trip_band
                trips = TripSource.fixed(int(trip_rng.integers(low, high + 1)))
            else:
                low, high = config.loop_trip_band
                base_trips = int(trip_rng.integers(low, high + 1))
                if float(trip_rng.random()) < config.variable_trip_fraction:
                    trips = TripSource.uniform(
                        max(1, base_trips - 1), base_trips + 1
                    )
                else:
                    trips = TripSource.fixed(base_trips)
            back_edge = Site(
                name=f"{config.name}.loop_r{region_index}_l{loop_index}",
                pc=layout.place(),
                behavior=None,
                is_backward=True,
            )
            loops.append(Loop(back_edge, Block(leaf_nodes), trips))
        guard = Site(
            name=f"{config.name}.region{region_index}",
            pc=layout.place(),
            behavior=BiasedBehavior(config.region_guard_p_taken),
        )
        regions.append(If(guard, then_body=Block(loops)))
    return SyntheticProgram(config.name, Block(regions))


# --------------------------------------------------------------------------
# The eight benchmark personalities.
# --------------------------------------------------------------------------

IBS_BENCHMARKS: Dict[str, BenchmarkConfig] = {
    "gcc": BenchmarkConfig(
        name="gcc",
        regions=20,
        loops_per_region=4,
        leaves_per_loop=4,
        loop_trip_band=(2, 4),
        variable_trip_fraction=0.150,
        kernel_loop_fraction=0.1,
        weights=CategoryWeights(
            easy=0.38, medium=0.16, hard=0.018, correlated=0.20, context=0.035,
            pattern=0.10, markov=0.06,
        ),
        correlated_noise=0.04,
    ),
    "gs": BenchmarkConfig(
        name="gs",
        regions=14,
        loops_per_region=4,
        leaves_per_loop=4,
        loop_trip_band=(2, 4),
        variable_trip_fraction=0.075,
        kernel_loop_fraction=0.2,
        weights=CategoryWeights(
            easy=0.42, medium=0.06, hard=0.012, correlated=0.28, context=0.08,
            pattern=0.10, markov=0.04,
        ),
        correlated_noise=0.03,
    ),
    "jpeg_play": BenchmarkConfig(
        name="jpeg_play",
        regions=8,
        loops_per_region=3,
        leaves_per_loop=3,
        loop_trip_band=(2, 4),
        variable_trip_fraction=0.000,
        kernel_loop_fraction=0.5,
        weights=CategoryWeights(
            easy=0.58, medium=0.004, hard=0.032, correlated=0.18, context=0.03,
            pattern=0.16, markov=0.01,
        ),
        correlated_noise=0.008,
    ),
    "mpeg_play": BenchmarkConfig(
        name="mpeg_play",
        regions=10,
        loops_per_region=3,
        leaves_per_loop=3,
        loop_trip_band=(2, 4),
        variable_trip_fraction=0.025,
        kernel_loop_fraction=0.45,
        weights=CategoryWeights(
            easy=0.45, medium=0.05, hard=0.008, correlated=0.18, context=0.05,
            pattern=0.10, markov=0.1,
        ),
        correlated_noise=0.02,
    ),
    "nroff": BenchmarkConfig(
        name="nroff",
        regions=12,
        loops_per_region=3,
        leaves_per_loop=4,
        loop_trip_band=(2, 4),
        variable_trip_fraction=0.050,
        kernel_loop_fraction=0.25,
        weights=CategoryWeights(
            easy=0.40, medium=0.07, hard=0.01, correlated=0.20, context=0.06,
            pattern=0.24, markov=0.03,
        ),
        correlated_noise=0.025,
    ),
    "sdet": BenchmarkConfig(
        name="sdet",
        regions=16,
        loops_per_region=3,
        leaves_per_loop=4,
        loop_trip_band=(2, 4),
        variable_trip_fraction=0.125,
        kernel_loop_fraction=0.15,
        weights=CategoryWeights(
            easy=0.36, medium=0.08, hard=0.018, correlated=0.18, context=0.07,
            pattern=0.08, markov=0.05, phased=0.12,
        ),
        correlated_noise=0.03,
        phase_length=2500,
    ),
    "verilog": BenchmarkConfig(
        name="verilog",
        regions=14,
        loops_per_region=3,
        leaves_per_loop=4,
        loop_trip_band=(2, 4),
        variable_trip_fraction=0.060,
        kernel_loop_fraction=0.2,
        weights=CategoryWeights(
            easy=0.36, medium=0.035, hard=0.01, correlated=0.24, context=0.06,
            pattern=0.14, markov=0.03,
        ),
        correlated_noise=0.025,
    ),
    "video_play": BenchmarkConfig(
        name="video_play",
        regions=8,
        loops_per_region=3,
        leaves_per_loop=3,
        loop_trip_band=(2, 4),
        variable_trip_fraction=0.000,
        kernel_loop_fraction=0.5,
        weights=CategoryWeights(
            easy=0.56, medium=0.008, hard=0.012, correlated=0.16, context=0.045,
            pattern=0.14, markov=0.015,
        ),
        correlated_noise=0.018,
    ),
}


def benchmark_names() -> List[str]:
    """Names of the suite benchmarks, in canonical order."""
    return list(IBS_BENCHMARKS)


@functools.lru_cache(maxsize=64)
def _program(name: str) -> SyntheticProgram:
    try:
        config = IBS_BENCHMARKS[name]
    except KeyError:
        raise ValueError(
            f"unknown benchmark {name!r}; expected one of {benchmark_names()}"
        ) from None
    return build_program(config)


def benchmark_program(name: str) -> SyntheticProgram:
    """The (memoized) synthetic program for benchmark ``name``."""
    return _program(name)


@functools.lru_cache(maxsize=64)
def load_benchmark(
    name: str, length: int = DEFAULT_TRACE_LENGTH, seed: int = 0
) -> Trace:
    """Generate (and memoize) the trace for one benchmark.

    Note: programs hold per-behaviour state, so generation always resets
    behaviours; traces for the same arguments are identical objects.
    """
    return _program(name).generate(length, seed)


def load_suite(
    length: int = DEFAULT_TRACE_LENGTH,
    seed: int = 0,
    names: "Sequence[str] | None" = None,
) -> Dict[str, Trace]:
    """Generate traces for the whole suite (or a named subset)."""
    selected = list(names) if names is not None else benchmark_names()
    return {name: load_benchmark(name, length, seed) for name in selected}
