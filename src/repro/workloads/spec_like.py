"""A SPEC-like alternative suite.

The paper chose IBS over "the commonly used SPEC benchmarks" because IBS
"more accurately represent[s] branch characteristics of real programs"
(kernel code, less loop-dominated).  To test that this reproduction's
conclusions are not artifacts of the primary suite, this module provides
four synthetic benchmarks in the *SPEC-int-95 style* the paper alludes
to: user-mode, loop-heavier, fewer static branches, fewer hard kernel
branches.

They reuse the same behaviour models and builder as the IBS suite
(:mod:`repro.workloads.ibs`), differing only in mix parameters — so any
divergence in results is attributable to workload character, not
machinery.
"""

from __future__ import annotations

import functools
from typing import Dict, List, Sequence

from repro.traces.trace import Trace
from repro.workloads.ibs import (
    BenchmarkConfig,
    CategoryWeights,
    build_program,
)

SPEC_BENCHMARKS: Dict[str, BenchmarkConfig] = {
    # compress: tight coding loops over mostly-uniform data.
    "compress": BenchmarkConfig(
        name="compress",
        regions=6,
        loops_per_region=3,
        leaves_per_loop=3,
        loop_trip_band=(2, 4),
        variable_trip_fraction=0.05,
        weights=CategoryWeights(
            easy=0.52, medium=0.05, hard=0.012, correlated=0.18,
            context=0.04, pattern=0.14, markov=0.03,
        ),
        kernel_loop_fraction=0.55,
    ),
    # go: branchy search with data-dependent decisions (the hard one).
    "go": BenchmarkConfig(
        name="go",
        regions=16,
        loops_per_region=3,
        leaves_per_loop=4,
        loop_trip_band=(2, 4),
        variable_trip_fraction=0.18,
        weights=CategoryWeights(
            easy=0.36, medium=0.12, hard=0.03, correlated=0.18,
            context=0.08, pattern=0.08, markov=0.08,
        ),
        kernel_loop_fraction=0.08,
    ),
    # li: lisp interpreter, dispatch-correlated.
    "li": BenchmarkConfig(
        name="li",
        regions=10,
        loops_per_region=3,
        leaves_per_loop=4,
        loop_trip_band=(2, 4),
        variable_trip_fraction=0.08,
        weights=CategoryWeights(
            easy=0.42, medium=0.05, hard=0.012, correlated=0.28,
            context=0.08, pattern=0.10, markov=0.04,
        ),
        kernel_loop_fraction=0.18,
    ),
    # perl: string processing, periodic patterns and bursts.
    "perl": BenchmarkConfig(
        name="perl",
        regions=12,
        loops_per_region=3,
        leaves_per_loop=4,
        loop_trip_band=(2, 4),
        variable_trip_fraction=0.1,
        weights=CategoryWeights(
            easy=0.40, medium=0.06, hard=0.015, correlated=0.20,
            context=0.06, pattern=0.16, markov=0.06,
        ),
        kernel_loop_fraction=0.2,
    ),
}


def spec_benchmark_names() -> List[str]:
    """Names of the SPEC-like benchmarks, in canonical order."""
    return list(SPEC_BENCHMARKS)


@functools.lru_cache(maxsize=32)
def _program(name: str):
    try:
        config = SPEC_BENCHMARKS[name]
    except KeyError:
        raise ValueError(
            f"unknown SPEC-like benchmark {name!r}; expected one of "
            f"{spec_benchmark_names()}"
        ) from None
    return build_program(config)


@functools.lru_cache(maxsize=32)
def load_spec_benchmark(name: str, length: int = 160_000, seed: int = 0) -> Trace:
    """Generate (and memoize) one SPEC-like benchmark trace."""
    return _program(name).generate(length, seed)


def load_spec_suite(
    length: int = 160_000,
    seed: int = 0,
    names: "Sequence[str] | None" = None,
) -> Dict[str, Trace]:
    """Generate traces for the SPEC-like suite (or a subset)."""
    selected = list(names) if names is not None else spec_benchmark_names()
    return {name: load_spec_benchmark(name, length, seed) for name in selected}
