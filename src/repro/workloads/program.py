"""Synthetic program structure and interpreter.

A :class:`SyntheticProgram` is a tree of control-flow nodes over a set of
branch :class:`Site` objects.  Running it interprets the tree repeatedly,
emitting one ``(pc, outcome)`` record per dynamic conditional branch until
the requested trace length is reached.

Nodes
-----
``Emit(site)``
    Execute ``site`` once: draw its outcome from its behaviour and emit it.
``If(site, then_body, else_body)``
    Execute ``site``; on taken run ``then_body``, otherwise ``else_body``.
    Conditional structure makes *which* branches execute depend on earlier
    outcomes, giving the global history register real path information.
``Loop(site, body, trips)``
    ``site`` is the loop back-edge: for a trip count drawn from ``trips``
    the branch is taken (executing ``body`` each time) and finally
    not-taken once.
``Block(children)``
    Sequential composition.

The interpreter bounds recursion by program construction (trees are
shallow) and bounds trace length exactly: generation stops mid-structure
once the target length is reached.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.traces.builder import TraceBuilder
from repro.traces.trace import NOT_TAKEN, TAKEN, Trace
from repro.utils.rng import make_rng
from repro.utils.validation import check_positive
from repro.workloads.behaviors import (
    BranchBehavior,
    ExecutionContext,
    TripSource,
)


@dataclass(frozen=True)
class Site:
    """A static conditional branch site.

    ``pc`` is the branch's instruction address (4-byte aligned), ``name``
    identifies the site for correlation sources, and ``behavior`` produces
    its outcomes.  Loop back-edge sites are marked ``is_backward`` so the
    BTFNT static predictor can classify them.
    """

    name: str
    pc: int
    behavior: Optional[BranchBehavior]
    is_backward: bool = False

    def __post_init__(self) -> None:
        if self.pc % 4 != 0:
            raise ValueError(f"site {self.name!r}: pc {self.pc:#x} not 4-byte aligned")


class _StopGeneration(Exception):
    """Raised internally when the requested trace length is reached."""


class Node(abc.ABC):
    """A control-flow tree node."""

    @abc.abstractmethod
    def execute(self, machine: "_Machine") -> None:
        """Interpret this node once."""

    @abc.abstractmethod
    def sites(self) -> List[Site]:
        """All sites contained in this subtree (with duplicates removed)."""


def _collect_sites(own: Sequence[Site], bodies: Sequence["Node"]) -> List[Site]:
    seen: Dict[str, Site] = {}
    for site in own:
        seen[site.name] = site
    for body in bodies:
        for site in body.sites():
            if site.name in seen and seen[site.name] is not site:
                raise ValueError(f"duplicate site name {site.name!r} in program")
            seen[site.name] = site
    return list(seen.values())


@dataclass
class Emit(Node):
    """Execute one branch site."""

    site: Site

    def execute(self, machine: "_Machine") -> None:
        machine.run_site(self.site)

    def sites(self) -> List[Site]:
        return [self.site]


@dataclass
class Block(Node):
    """Sequential composition of child nodes."""

    children: Sequence[Node]

    def execute(self, machine: "_Machine") -> None:
        for child in self.children:
            child.execute(machine)

    def sites(self) -> List[Site]:
        return _collect_sites([], list(self.children))


@dataclass
class If(Node):
    """A conditional guarding one or two bodies."""

    site: Site
    then_body: Node = field(default_factory=lambda: Block([]))
    else_body: Node = field(default_factory=lambda: Block([]))

    def execute(self, machine: "_Machine") -> None:
        outcome = machine.run_site(self.site)
        if outcome == TAKEN:
            self.then_body.execute(machine)
        else:
            self.else_body.execute(machine)

    def sites(self) -> List[Site]:
        return _collect_sites([self.site], [self.then_body, self.else_body])


@dataclass
class Loop(Node):
    """A counted loop with a back-edge branch site.

    The back-edge site needs no behaviour of its own: the loop drives it
    (taken for each iteration, not-taken on exit), so ``site.behavior``
    may be ``None``.
    """

    site: Site
    body: Node
    trips: TripSource

    def execute(self, machine: "_Machine") -> None:
        trip_count = self.trips.next_trips(machine.rng)
        for _ in range(trip_count):
            machine.emit(self.site, TAKEN)
            self.body.execute(machine)
        machine.emit(self.site, NOT_TAKEN)

    def sites(self) -> List[Site]:
        return _collect_sites([self.site], [self.body])


class _Machine:
    """Interpreter state for one program run."""

    def __init__(
        self, builder: TraceBuilder, target_length: int, rng: np.random.Generator
    ) -> None:
        self.builder = builder
        self.target_length = target_length
        self.rng = rng
        self.context = ExecutionContext()

    def run_site(self, site: Site) -> int:
        if site.behavior is None:
            raise ValueError(f"site {site.name!r} has no behaviour and is not a loop")
        outcome = site.behavior.next_outcome(self.context, self.rng)
        self.emit(site, outcome)
        return outcome

    def emit(self, site: Site, outcome: int) -> None:
        self.builder.append(site.pc, outcome)
        self.context.record(site.name, outcome)
        if len(self.builder) >= self.target_length:
            raise _StopGeneration


class SyntheticProgram:
    """A named control-flow tree that generates branch traces.

    The top-level node is executed repeatedly (modelling the benchmark's
    outer driver loop) until the requested number of dynamic branches has
    been emitted.
    """

    def __init__(self, name: str, root: Node) -> None:
        self._name = name
        self._root = root
        self._sites = root.sites()
        if not self._sites:
            raise ValueError("program contains no branch sites")
        pcs = [site.pc for site in self._sites]
        if len(set(pcs)) != len(pcs):
            raise ValueError("branch sites must have distinct PCs")

    @property
    def name(self) -> str:
        return self._name

    @property
    def sites(self) -> List[Site]:
        return list(self._sites)

    @property
    def backward_pcs(self) -> List[int]:
        """PCs of loop back-edge sites (for the BTFNT static predictor)."""
        return [site.pc for site in self._sites if site.is_backward]

    def generate(self, length: int, seed: int = 0) -> Trace:
        """Generate a trace of exactly ``length`` dynamic branches."""
        check_positive(length, "length")
        for site in self._sites:
            if site.behavior is not None:
                site.behavior.reset()
        builder = TraceBuilder(self._name)
        machine = _Machine(builder, length, make_rng("program", self._name, seed))
        try:
            while True:
                self._root.execute(machine)
        except _StopGeneration:
            pass
        return builder.build()
