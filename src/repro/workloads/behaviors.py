"""Per-branch-site behaviour models.

Each conditional branch site in a synthetic program owns a
:class:`BranchBehavior`: a small state machine producing the site's next
outcome, optionally reading the recent outcomes of *other* sites through
the shared :class:`ExecutionContext` (that is what makes branches
predictable from global history, the effect gshare and the BHR-indexed
confidence tables exploit).

All randomness flows through the ``numpy`` generator passed to
``next_outcome``; behaviours therefore produce identical streams for
identical seeds.
"""

from __future__ import annotations

import abc
from typing import Dict, Optional, Sequence

import numpy as np

from repro.traces.trace import NOT_TAKEN, TAKEN
from repro.utils.validation import check_positive, check_probability


class ExecutionContext:
    """Shared run-time state of a synthetic program.

    Records the most recent outcome of every site, so correlated
    behaviours can read their source branches.  Sites that have not yet
    executed read as not-taken.
    """

    def __init__(self) -> None:
        self._last_outcome: Dict[str, int] = {}

    def last_outcome(self, site_name: str) -> int:
        """Most recent outcome of ``site_name`` (NOT_TAKEN if never run)."""
        return self._last_outcome.get(site_name, NOT_TAKEN)

    def record(self, site_name: str, outcome: int) -> None:
        """Store the latest outcome of ``site_name``."""
        self._last_outcome[site_name] = outcome

    def reset(self) -> None:
        self._last_outcome.clear()


class BranchBehavior(abc.ABC):
    """Produces the next outcome for one branch site."""

    @abc.abstractmethod
    def next_outcome(
        self, context: ExecutionContext, rng: np.random.Generator
    ) -> int:
        """Return TAKEN (1) or NOT_TAKEN (0) for this execution."""

    def reset(self) -> None:
        """Restore per-behaviour state (default: stateless)."""


class BiasedBehavior(BranchBehavior):
    """Independent Bernoulli outcomes with fixed taken probability.

    With ``p_taken`` near 0 or 1 this models strongly biased
    data-dependent branches (easy); near 0.5 it models genuinely hard
    branches where mispredictions concentrate.
    """

    def __init__(self, p_taken: float) -> None:
        self._p_taken = check_probability(p_taken, "p_taken")

    @property
    def p_taken(self) -> float:
        return self._p_taken

    def next_outcome(self, context, rng) -> int:
        return TAKEN if rng.random() < self._p_taken else NOT_TAKEN


class PatternBehavior(BranchBehavior):
    """A repeating fixed outcome pattern (e.g. the classic TTNTTN).

    Perfectly periodic, hence learnable by any history-based predictor
    whose reach covers the period.
    """

    def __init__(self, pattern: Sequence[int]) -> None:
        if not pattern:
            raise ValueError("pattern must be non-empty")
        if any(outcome not in (0, 1) for outcome in pattern):
            raise ValueError("pattern entries must be 0 or 1")
        self._pattern = tuple(pattern)
        self._position = 0

    def next_outcome(self, context, rng) -> int:
        outcome = self._pattern[self._position]
        self._position = (self._position + 1) % len(self._pattern)
        return outcome

    def reset(self) -> None:
        self._position = 0


class CorrelatedBehavior(BranchBehavior):
    """Outcome determined by earlier branches' outcomes, plus noise.

    The deterministic core is the XOR (parity) of the most recent outcomes
    of ``source_sites``, optionally inverted; with probability ``noise``
    the outcome is flipped.  This is the canonical globally-correlated
    branch (cf. Pan/So/Rahmeh): gshare predicts it with accuracy
    ``1 - noise`` once trained, while a per-PC predictor sees a ~50 % coin.
    """

    def __init__(
        self,
        source_sites: Sequence[str],
        noise: float = 0.0,
        invert: bool = False,
    ) -> None:
        if not source_sites:
            raise ValueError("correlated behaviour needs at least one source site")
        self._source_sites = tuple(source_sites)
        self._noise = check_probability(noise, "noise")
        self._invert = invert

    def next_outcome(self, context, rng) -> int:
        parity = 0
        for name in self._source_sites:
            parity ^= context.last_outcome(name)
        if self._invert:
            parity ^= 1
        if self._noise and rng.random() < self._noise:
            parity ^= 1
        return parity


class ContextDependentBehavior(BranchBehavior):
    """Predictable in one global context, near-random in another.

    When the parity of the source sites' latest outcomes is 0 the branch
    is strongly biased not-taken (noise ``p_easy_noise``); when the parity
    is 1 the branch is a ``p_hard``-coin.  This is the population that
    separates history-indexed confidence from PC-indexed confidence: the
    *same static branch* is trustworthy on some paths and untrustworthy on
    others, so only a BHR-aware table can tell the contexts apart (the
    paper's Fig. 5 ordering BHRxorPC > BHR > PC).
    """

    def __init__(
        self,
        source_sites: Sequence[str],
        p_easy_noise: float = 0.02,
        p_hard: float = 0.5,
    ) -> None:
        if not source_sites:
            raise ValueError("context-dependent behaviour needs source sites")
        self._source_sites = tuple(source_sites)
        self._p_easy_noise = check_probability(p_easy_noise, "p_easy_noise")
        self._p_hard = check_probability(p_hard, "p_hard")

    def next_outcome(self, context, rng) -> int:
        parity = 0
        for name in self._source_sites:
            parity ^= context.last_outcome(name)
        if parity == 0:
            return TAKEN if rng.random() < self._p_easy_noise else NOT_TAKEN
        return TAKEN if rng.random() < self._p_hard else NOT_TAKEN


class PhasedBehavior(BranchBehavior):
    """Bias that alternates between two phases of fixed length.

    Models program phase behaviour / context-switch-like shifts: the
    branch is strongly biased one way for ``phase_length`` executions,
    then strongly biased the other way.  Predictors mispredict in bursts
    at phase boundaries — mispredictions a confidence mechanism should
    flag via the recent-history CIR.
    """

    def __init__(
        self, phase_length: int, p_taken_a: float, p_taken_b: float
    ) -> None:
        self._phase_length = check_positive(phase_length, "phase_length")
        self._p_a = check_probability(p_taken_a, "p_taken_a")
        self._p_b = check_probability(p_taken_b, "p_taken_b")
        self._executions = 0

    def next_outcome(self, context, rng) -> int:
        phase = (self._executions // self._phase_length) % 2
        self._executions += 1
        p_taken = self._p_a if phase == 0 else self._p_b
        return TAKEN if rng.random() < p_taken else NOT_TAKEN

    def reset(self) -> None:
        self._executions = 0


class MarkovBehavior(BranchBehavior):
    """A two-state Markov chain over outcomes (bursty behaviour).

    ``p_stay_taken`` is the probability of remaining taken after a taken
    outcome; ``p_stay_not_taken`` likewise for not-taken.  High stay
    probabilities produce long runs with unpredictable switch points —
    mostly predictable, with clustered mispredictions at run boundaries.
    """

    def __init__(
        self,
        p_stay_taken: float,
        p_stay_not_taken: float,
        initial: int = TAKEN,
    ) -> None:
        self._p_stay_taken = check_probability(p_stay_taken, "p_stay_taken")
        self._p_stay_not_taken = check_probability(
            p_stay_not_taken, "p_stay_not_taken"
        )
        if initial not in (0, 1):
            raise ValueError(f"initial must be 0 or 1, got {initial}")
        self._initial = initial
        self._state = initial

    def next_outcome(self, context, rng) -> int:
        if self._state == TAKEN:
            stay = rng.random() < self._p_stay_taken
            self._state = TAKEN if stay else NOT_TAKEN
        else:
            stay = rng.random() < self._p_stay_not_taken
            self._state = NOT_TAKEN if stay else TAKEN
        return self._state

    def reset(self) -> None:
        self._state = self._initial


class LoopExitBehavior(BranchBehavior):
    """Internal helper for loop trip counts when used as a guard.

    Taken while the loop continues; not-taken on exit.  ``trip_source``
    yields the trip count for each fresh entry of the loop.  Exposed
    mainly for tests; :class:`repro.workloads.program.Loop` normally
    drives trip counts itself.
    """

    def __init__(self, trip_source: "TripSource") -> None:
        self._trip_source = trip_source
        self._remaining: Optional[int] = None

    def next_outcome(self, context, rng) -> int:
        if self._remaining is None:
            self._remaining = self._trip_source.next_trips(rng)
        if self._remaining > 0:
            self._remaining -= 1
            return TAKEN
        self._remaining = None
        return NOT_TAKEN

    def reset(self) -> None:
        self._remaining = None


class TripSource:
    """Generates loop trip counts: fixed, uniform, or geometric.

    >>> TripSource.fixed(8).next_trips(None)
    8
    """

    def __init__(self, kind: str, low: int, high: int, mean: float) -> None:
        self._kind = kind
        self._low = low
        self._high = high
        self._mean = mean

    @classmethod
    def fixed(cls, trips: int) -> "TripSource":
        check_positive(trips, "trips")
        return cls("fixed", trips, trips, float(trips))

    @classmethod
    def uniform(cls, low: int, high: int) -> "TripSource":
        check_positive(low, "low")
        if high < low:
            raise ValueError(f"high ({high}) must be >= low ({low})")
        return cls("uniform", low, high, (low + high) / 2.0)

    @classmethod
    def geometric(cls, mean: float) -> "TripSource":
        if mean < 1.0:
            raise ValueError(f"mean must be >= 1, got {mean}")
        return cls("geometric", 1, 0, mean)

    @property
    def mean_trips(self) -> float:
        return self._mean

    def next_trips(self, rng: Optional[np.random.Generator]) -> int:
        if self._kind == "fixed":
            return self._low
        if rng is None:
            raise ValueError(f"{self._kind} trip source requires an rng")
        if self._kind == "uniform":
            return int(rng.integers(self._low, self._high + 1))
        # geometric on support {1, 2, ...} with the configured mean
        return int(rng.geometric(1.0 / self._mean))
