"""Synthetic workload substrate — the IBS suite substitute.

The paper evaluates on the (proprietary) Mach IBS traces.  This package
replaces them with *synthetic programs*: explicit control-flow structures
whose conditional branches follow configurable behaviour models.  The
models span the branch populations that drive the paper's results:

* loop back-edges (long taken runs, one not-taken exit),
* strongly biased data-dependent branches,
* branches correlated with the outcomes of earlier branches (the
  population gshare and BHR-indexed confidence tables exploit),
* periodic per-branch patterns (the local-predictor-friendly population),
* phase-changing branches (bias shifts over time),
* bursty two-state Markov branches,
* genuinely hard near-random branches (where mispredictions concentrate).

:mod:`repro.workloads.ibs` composes these into eight benchmarks named
after the IBS programs, with mixes tuned so the aggregate misprediction
rates and confidence-curve shapes land near the paper's (see
EXPERIMENTS.md for paper-vs-measured numbers).
"""

from repro.workloads.behaviors import (
    BiasedBehavior,
    BranchBehavior,
    ContextDependentBehavior,
    CorrelatedBehavior,
    ExecutionContext,
    MarkovBehavior,
    PatternBehavior,
    PhasedBehavior,
)
from repro.workloads.behaviors import TripSource
from repro.workloads.ibs import (
    IBS_BENCHMARKS,
    benchmark_names,
    load_benchmark,
    load_suite,
)
from repro.workloads.program import (
    Block,
    Emit,
    If,
    Loop,
    Node,
    Site,
    SyntheticProgram,
)

__all__ = [
    "BranchBehavior",
    "ExecutionContext",
    "BiasedBehavior",
    "PatternBehavior",
    "CorrelatedBehavior",
    "ContextDependentBehavior",
    "PhasedBehavior",
    "MarkovBehavior",
    "Site",
    "Node",
    "Block",
    "Emit",
    "If",
    "Loop",
    "TripSource",
    "SyntheticProgram",
    "IBS_BENCHMARKS",
    "benchmark_names",
    "load_benchmark",
    "load_suite",
]
