"""Multi-thread (SMT) fetch arbitration with confidence gating.

N threads share one fetch port.  Each thread runs its own trace,
predictor, and (optionally) confidence estimator.  The arbiter grants
the port block-by-block to the ready thread that has been waiting
longest (round-robin by readiness time).

Thread semantics per grant:

* fetching a block occupies the port for ``block / fetch_width`` cycles;
* a branch resolves ``resolve_latency`` cycles after its block's fetch;
* **ungated**: threads keep fetching speculatively past unresolved
  branches; blocks fetched after a branch that later resolves
  mispredicted are wrong-path — they occupy the port and are squashed,
  and the thread refetches them after the resolution;
* **gated**: after fetching a branch whose confidence signal is LOW, a
  thread removes itself from arbitration until that branch resolves.
  Covered mispredictions waste no port time; the price is the lost
  overlap when a gated branch was in fact predicted correctly — which
  other threads absorb, exactly the paper's application 2 argument.

The model answers the throughput question: how many useful instructions
per port-cycle does each policy sustain over the same work?
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

from repro.core.threshold import ThresholdConfidence
from repro.pipeline.machine import FrontendConfig
from repro.predictors.base import BranchPredictor
from repro.traces.trace import Trace
from repro.utils.bits import bit_mask


@dataclass(frozen=True)
class SMTConfig:
    """Shared-port geometry (reuses the frontend block/latency model)."""

    frontend: FrontendConfig = FrontendConfig()
    #: Gate fetch behind low-confidence branches when estimators are given.
    gate_on_low_confidence: bool = False


@dataclass(frozen=True)
class SMTReport:
    """Throughput outcome of one arbitration run."""

    total_cycles: float
    useful_instructions: int
    squashed_slots: float
    per_thread_cycles: List[float]
    gated_stalls: int

    @property
    def throughput(self) -> float:
        """Useful instructions per port-cycle."""
        if self.total_cycles == 0:
            return 0.0
        return self.useful_instructions / self.total_cycles

    @property
    def waste_fraction(self) -> float:
        total = self.useful_instructions + self.squashed_slots
        return self.squashed_slots / total if total else 0.0


class _Thread:
    """Arbitration state of one hardware thread."""

    __slots__ = (
        "pcs", "outcomes", "position", "predictor", "confidence",
        "bhr", "ready_at", "barrier", "done", "finish_time",
    )

    def __init__(
        self,
        trace: Trace,
        predictor: BranchPredictor,
        confidence: Optional[ThresholdConfidence],
    ) -> None:
        self.pcs = trace.pcs.tolist()
        self.outcomes = trace.outcomes.tolist()
        self.position = 0
        self.predictor = predictor
        self.confidence = confidence
        self.bhr = 0
        self.ready_at = 0.0
        #: Resolution time of the oldest unresolved *mispredicted* branch;
        #: blocks fetched before it are wrong-path.
        self.barrier: Optional[float] = None
        self.done = len(self.pcs) == 0
        self.finish_time = 0.0


def simulate_smt(
    traces: Sequence[Trace],
    predictors: Sequence[BranchPredictor],
    confidences: Optional[Sequence[ThresholdConfidence]] = None,
    config: SMTConfig = SMTConfig(),
    history_bits: int = 16,
) -> SMTReport:
    """Run the shared-fetch-port arbitration to completion."""
    if len(traces) != len(predictors):
        raise ValueError("need one predictor per trace")
    if confidences is not None and len(confidences) != len(traces):
        raise ValueError("need one confidence estimator per trace")
    if config.gate_on_low_confidence and confidences is None:
        raise ValueError("gating requires confidence estimators")
    if not traces:
        raise ValueError("need at least one thread")

    frontend = config.frontend
    width = float(frontend.fetch_width)
    resolve_latency = float(frontend.resolve_latency)
    history_mask = bit_mask(history_bits)

    threads = [
        _Thread(
            trace,
            predictor,
            None if confidences is None else confidences[index],
        )
        for index, (trace, predictor) in enumerate(zip(traces, predictors))
    ]

    port_free = 0.0
    useful = 0
    squashed = 0.0
    gated_stalls = 0

    active = [t for t in threads if not t.done]
    while active:
        # Round-robin by readiness: the ready thread that has waited
        # longest (smallest ready_at) wins the port.
        thread = min(active, key=lambda t: t.ready_at)
        start = max(port_free, thread.ready_at)
        pc = thread.pcs[thread.position]
        block = frontend.block_size(pc)
        busy = block / width
        port_free = start + busy

        if thread.barrier is not None and start < thread.barrier:
            # Wrong-path fetch: burns the port, retires nothing, and the
            # thread stays on the same architectural branch.
            squashed += block
            thread.ready_at = port_free
            continue
        thread.barrier = None

        outcome = thread.outcomes[thread.position]
        prediction = thread.predictor.predict(pc, thread.bhr)
        correct = prediction == outcome
        resolve_at = port_free + resolve_latency

        gate = False
        if thread.confidence is not None:
            signal = thread.confidence.signal(pc, thread.bhr, 0)
            gate = config.gate_on_low_confidence and signal == 0
            thread.confidence.update(pc, thread.bhr, 0, correct)
        thread.predictor.update(pc, thread.bhr, outcome)
        thread.bhr = ((thread.bhr << 1) | outcome) & history_mask

        useful += block
        thread.position += 1
        if thread.position >= len(thread.pcs):
            thread.done = True
            thread.finish_time = resolve_at
            active = [t for t in active if not t.done]
            continue

        if gate:
            gated_stalls += 1
            thread.ready_at = resolve_at
        else:
            thread.ready_at = port_free
            if not correct:
                thread.barrier = resolve_at

    total_cycles = max(
        [port_free] + [thread.finish_time for thread in threads]
    )
    return SMTReport(
        total_cycles=total_cycles,
        useful_instructions=useful,
        squashed_slots=squashed,
        per_thread_cycles=[thread.finish_time for thread in threads],
        gated_stalls=gated_stalls,
    )
