"""Speculative-frontend pipeline models.

The paper's applications presuppose a speculative processor: dual-path
execution trades *fetch bandwidth* for misprediction recovery, and SMT
fetch gating reallocates fetch slots between threads.  The analytic
models in :mod:`repro.apps` charge fixed per-event penalties; this
package provides timing models in which those costs *emerge* from fetch
bandwidth, branch-resolution latency, and squash semantics:

* :class:`~repro.pipeline.machine.SpeculativeFrontend` — a single-thread
  fetch/resolve timing model with wrong-path squash, optionally forking
  both paths on a low-confidence signal
  (:class:`~repro.pipeline.machine.DualPathPolicy`);
* :mod:`repro.pipeline.smt` — a multi-thread fetch arbiter where threads
  compete for one fetch port, with optional confidence gating.

The models are deliberately frontend-centric (the paper's costs are all
fetch-side); backend execution is abstracted as retirement of correctly
fetched instructions.
"""

from repro.pipeline.machine import (
    DualPathPolicy,
    FrontendConfig,
    FrontendReport,
    SpeculativeFrontend,
)
from repro.pipeline.smt import SMTConfig, SMTReport, simulate_smt

__all__ = [
    "FrontendConfig",
    "FrontendReport",
    "DualPathPolicy",
    "SpeculativeFrontend",
    "SMTConfig",
    "SMTReport",
    "simulate_smt",
]
