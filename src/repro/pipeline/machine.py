"""Single-thread speculative frontend timing model.

The model tracks fetch *slots* (one instruction per slot,
``fetch_width`` slots per cycle) along the predicted path:

* every dynamic branch is preceded by a deterministic per-site run of
  non-branch instructions (its *fetch block*);
* a branch resolves ``resolve_latency`` cycles after the cycle it was
  fetched in;
* on a misprediction, every slot fetched after the branch and before its
  resolution is squashed, and fetch redirects at the resolution cycle
  plus ``redirect_penalty``;
* with a :class:`DualPathPolicy`, a branch flagged low-confidence at
  fetch time (and no other fork outstanding) forks: until it resolves, a
  secondary fetch port of ``alternate_width`` slots/cycle follows the
  non-predicted path (the paper's premise: dual-path uses resources that
  "would be unused anyway"), stealing ``fork_primary_loss`` of the
  primary port's bandwidth (cache-port contention).  A mispredicted
  forked branch pays no redirect and resumes *ahead* by the
  alternate-path instructions already fetched; the primary slots spent
  past it are squashed.  A correctly-predicted forked branch squashes
  the alternate-path slots instead.

Time is accounted per fetch block (not per cycle) with fractional-cycle
precision, which keeps full-suite runs in seconds while preserving the
bandwidth/latency trade-offs the applications measure.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional


from repro.core.threshold import ThresholdConfidence
from repro.predictors.base import BranchPredictor
from repro.traces.trace import Trace
from repro.utils.bits import bit_mask
from repro.utils.validation import check_positive


@dataclass(frozen=True)
class FrontendConfig:
    """Geometry and latencies of the modelled frontend."""

    #: Instructions fetched per cycle along one path.
    fetch_width: int = 4
    #: Cycles from a branch's fetch to its resolution.
    resolve_latency: int = 8
    #: Extra cycles to redirect fetch after a (non-forked) misprediction.
    redirect_penalty: int = 1
    #: Deterministic per-site fetch-block sizing: a branch at ``pc`` is
    #: preceded by ``min_block + (pc >> 2) % block_spread`` instructions.
    min_block: int = 2
    block_spread: int = 6
    #: Secondary-port bandwidth used by a forked alternate path
    #: (slots/cycle); the paper assumes spare machine resources.
    alternate_width: float = 2.0
    #: Fraction of primary fetch bandwidth lost while a fork is
    #: outstanding (models port/cache contention with the alternate path).
    fork_primary_loss: float = 0.1

    def __post_init__(self) -> None:
        check_positive(self.fetch_width, "fetch_width")
        check_positive(self.resolve_latency, "resolve_latency")
        check_positive(self.min_block, "min_block")
        check_positive(self.block_spread, "block_spread")
        if self.redirect_penalty < 0:
            raise ValueError("redirect_penalty must be non-negative")
        if self.alternate_width < 0:
            raise ValueError("alternate_width must be non-negative")
        if not 0.0 <= self.fork_primary_loss < 1.0:
            raise ValueError("fork_primary_loss must be within [0, 1)")

    def block_size(self, pc: int) -> int:
        """Instructions in the fetch block ending at the branch at ``pc``
        (the non-branch run plus the branch itself)."""
        return self.min_block + (pc >> 2) % self.block_spread + 1


@dataclass(frozen=True)
class DualPathPolicy:
    """Fork-both-paths policy driven by a binary confidence signal."""

    confidence: ThresholdConfidence
    #: At most this many forks may be outstanding (the paper's selective
    #: dual-path discussion assumes a two-thread limit, i.e. one fork).
    max_outstanding_forks: int = 1


@dataclass(frozen=True)
class FrontendReport:
    """Timing outcome of one frontend run."""

    cycles: float
    retired_instructions: int
    squashed_slots: float
    branches: int
    mispredictions: int
    forks: int
    covered_mispredictions: int

    @property
    def ipc(self) -> float:
        """Retired (correct-path) instructions per cycle."""
        return self.retired_instructions / self.cycles if self.cycles else 0.0

    @property
    def fork_fraction(self) -> float:
        return self.forks / self.branches if self.branches else 0.0

    @property
    def misprediction_coverage(self) -> float:
        if self.mispredictions == 0:
            return 0.0
        return self.covered_mispredictions / self.mispredictions

    def speedup_over(self, baseline: "FrontendReport") -> float:
        """IPC ratio of this run over ``baseline``."""
        return self.ipc / baseline.ipc if baseline.ipc else 0.0


class SpeculativeFrontend:
    """Drives a predictor (and optional dual-path policy) over a trace."""

    def __init__(
        self,
        predictor: BranchPredictor,
        config: FrontendConfig = FrontendConfig(),
        dual_path: Optional[DualPathPolicy] = None,
        history_bits: int = 16,
    ) -> None:
        self._predictor = predictor
        self._config = config
        self._dual_path = dual_path
        self._history_mask = bit_mask(history_bits)

    def run(self, trace: Trace) -> FrontendReport:
        """Simulate the frontend over ``trace`` and report timing."""
        config = self._config
        predictor = self._predictor
        policy = self._dual_path
        width = float(config.fetch_width)
        resolve_latency = float(config.resolve_latency)
        redirect_penalty = float(config.redirect_penalty)

        clock = 0.0                  # fetch-time in cycles (fractional)
        retired = 0
        squashed = 0.0
        mispredictions = 0
        forks = 0
        covered = 0
        #: Resolution time of the currently outstanding fork, if any.
        fork_resolves_at: Optional[float] = None
        bhr = 0

        alternate_width = float(config.alternate_width)
        primary_loss = float(config.fork_primary_loss)

        pcs = trace.pcs.tolist()
        outcomes = trace.outcomes.tolist()
        for pc, outcome in zip(pcs, outcomes):
            block = config.block_size(pc)
            # While a fork is outstanding, the primary port runs slightly
            # degraded (the alternate path contends for cache bandwidth).
            if fork_resolves_at is not None and clock < fork_resolves_at:
                effective_width = width * (1.0 - primary_loss)
            else:
                effective_width = width
                fork_resolves_at = None
            fetch_cycles = block / effective_width
            fetch_done = clock + fetch_cycles

            prediction = predictor.predict(pc, bhr)
            correct = prediction == outcome

            fork_this = False
            if policy is not None and fork_resolves_at is None:
                signal = policy.confidence.signal(pc, bhr, 0)
                if signal == 0:  # LOW confidence
                    fork_this = True
            if policy is not None:
                policy.confidence.update(pc, bhr, 0, correct)

            retired += block
            if fork_this:
                forks += 1
                resolve_at = fetch_done + resolve_latency
                #: Correct-path slots the alternate port banks during the
                #: speculation window.
                alternate_slots = alternate_width * resolve_latency
                if correct:
                    # The alternate-path slots were down the wrong path.
                    squashed += alternate_slots
                    fork_resolves_at = resolve_at
                    clock = fetch_done
                else:
                    mispredictions += 1
                    covered += 1
                    # The primary path past the branch was wrong: its slots
                    # during the window are squashed.  The alternate path
                    # already fetched ``alternate_slots`` of correct path,
                    # so fetch resumes *ahead* by that many slots — and
                    # without a redirect penalty.
                    squashed += effective_width * resolve_latency
                    head_start = min(
                        alternate_slots / width, resolve_latency
                    )
                    clock = resolve_at - head_start
                    fork_resolves_at = None
            elif correct:
                clock = fetch_done
            else:
                mispredictions += 1
                resolve_at = fetch_done + resolve_latency
                # All slots fetched between this branch and its resolution
                # go down the wrong path.
                squashed += effective_width * resolve_latency
                clock = resolve_at + redirect_penalty
                fork_resolves_at = None

            predictor.update(pc, bhr, outcome)
            bhr = ((bhr << 1) | outcome) & self._history_mask

        return FrontendReport(
            cycles=clock,
            retired_instructions=retired,
            squashed_slots=squashed,
            branches=len(trace),
            mispredictions=mispredictions,
            forks=forks,
            covered_mispredictions=covered,
        )
