"""The stable high-level facade of the library.

Four entry points cover the common uses — running a paper experiment,
sweeping a benchmark's predictor streams, building a confidence curve,
and discovering what experiments exist — without reaching into the
internal module layout.  Everything here takes keyword-only options, is
fully documented, and is covered by the compatibility promise: internal
modules may reorganize between releases, ``repro.api`` does not.

>>> import repro
>>> curve = repro.confidence_curve("jpeg_play", length=20_000)
>>> result = repro.run_experiment("fig5", trace_length=12_000,
...                               benchmarks=("jpeg_play",))
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

from repro.analysis.buckets import BucketStatistics
from repro.analysis.curves import ConfidenceCurve
from repro.experiments.config import DEFAULT_CONFIG, ExperimentConfig
from repro.workloads.ibs import DEFAULT_TRACE_LENGTH

__all__ = [
    "run_experiment",
    "predictor_streams",
    "confidence_curve",
    "list_experiments",
]


def _configure(
    config: Optional[ExperimentConfig],
    benchmarks: Optional[Sequence[str]],
    trace_length: Optional[int],
    seed: Optional[int],
    jobs: Optional[int],
    chunk_size: Optional[int],
) -> ExperimentConfig:
    """Resolve an explicit config plus keyword overrides into one config."""
    resolved = config if config is not None else DEFAULT_CONFIG
    overrides = {}
    if benchmarks is not None:
        overrides["benchmarks"] = tuple(benchmarks)
    if trace_length is not None:
        overrides["trace_length"] = trace_length
    if seed is not None:
        overrides["seed"] = seed
    if jobs is not None:
        overrides["jobs"] = jobs
    if chunk_size is not None:
        overrides["chunk_size"] = chunk_size
    return resolved.scaled(**overrides) if overrides else resolved


def run_experiment(
    experiment_id: str,
    *,
    benchmarks: Optional[Sequence[str]] = None,
    trace_length: Optional[int] = None,
    seed: Optional[int] = None,
    jobs: Optional[int] = None,
    chunk_size: Optional[int] = None,
    config: Optional[ExperimentConfig] = None,
):
    """Run one of the paper's experiments and return its result object.

    Parameters
    ----------
    experiment_id:
        An id from :func:`list_experiments` (``"fig5"``, ``"table1"``, ...).
    benchmarks:
        Subset of suite benchmarks to simulate (default: the full suite).
    trace_length:
        Dynamic conditional branches per benchmark.
    seed:
        Workload generation seed.
    jobs:
        Worker processes for the sweep fan-out (1 = serial).
    chunk_size:
        Branches per streaming chunk.  Bounds peak working-set memory;
        results are identical for any value (``None`` = monolithic).
    config:
        A full :class:`~repro.experiments.config.ExperimentConfig` to
        start from instead of the defaults; the keyword overrides above
        are applied on top of it.

    Returns
    -------
    The experiment's result dataclass — every result has ``format()``
    rendering the paper-style report, and most expose
    :class:`~repro.analysis.curves.ConfidenceCurve` attributes.
    """
    from repro.experiments import get_experiment

    experiment = get_experiment(experiment_id)
    return experiment.run(
        _configure(config, benchmarks, trace_length, seed, jobs, chunk_size)
    )


def predictor_streams(
    benchmark: str,
    *,
    length: int = DEFAULT_TRACE_LENGTH,
    seed: int = 0,
    entries: int = 1 << 16,
    history_bits: int = 16,
    chunk_size: Optional[int] = None,
):
    """Predictor output streams of the paper's gshare over one benchmark.

    Runs (or replays from the persistent cache) the gshare sweep and
    returns :class:`~repro.sim.fast.PredictorStreams`: per-branch
    correctness, pre-branch BHR values, PCs, and the derived global-CIR
    stream — the inputs every confidence mechanism consumes.

    Parameters
    ----------
    benchmark:
        A suite benchmark name (see
        :func:`repro.workloads.benchmark_names`).
    length:
        Dynamic conditional branches to simulate.
    seed:
        Workload generation seed.
    entries:
        gshare table size (power of two).
    history_bits:
        gshare global-history width.
    chunk_size:
        Branches per streaming chunk; routes the sweep through the
        chunked pipeline and its per-chunk disk cache.  Output is
        identical for any value.
    """
    from repro.sim.cache import cached_predictor_streams

    return cached_predictor_streams(
        benchmark,
        length=length,
        seed=seed,
        entries=entries,
        history_bits=history_bits,
        chunk_size=chunk_size,
    )


def confidence_curve(
    benchmark: str,
    *,
    length: int = 50_000,
    seed: int = 0,
    index_kind: str = "pc_xor_bhr",
    cir_bits: int = 16,
    ct_index_bits: int = 16,
    chunk_size: Optional[int] = None,
) -> ConfidenceCurve:
    """The one-level CIR confidence curve of one benchmark.

    Sweeps the paper's large gshare over the benchmark, drives a
    one-level CIR table with the chosen index, and returns the resulting
    :class:`~repro.analysis.curves.ConfidenceCurve` under the ideal
    (empirical) reduction — the basic Fig. 5-style measurement.

    Parameters
    ----------
    benchmark:
        A suite benchmark name.
    length:
        Dynamic conditional branches to simulate.
    seed:
        Workload generation seed.
    index_kind:
        Confidence-table index: ``"pc"``, ``"bhr"``, or ``"pc_xor_bhr"``.
    cir_bits:
        CIR register width n.
    ct_index_bits:
        Table index width (the table has ``2**ct_index_bits`` entries).
    chunk_size:
        Branches per streaming chunk (identical output for any value).
    """
    from repro.core.indexing import make_index
    from repro.sim.fast import cir_pattern_stream
    from repro.utils.bits import bit_mask

    streams = predictor_streams(
        benchmark, length=length, seed=seed, chunk_size=chunk_size
    )
    index = make_index(index_kind, ct_index_bits)
    gcirs = streams.gcirs if index.uses_gcir else streams.bhrs * 0
    indices = index.vectorized(streams.pcs, streams.bhrs, gcirs)
    patterns = cir_pattern_stream(
        indices, streams.correct, cir_bits=cir_bits,
        init_patterns=bit_mask(cir_bits),
    )
    statistics = BucketStatistics.from_streams(
        patterns, streams.correct, num_buckets=1 << cir_bits
    )
    return ConfidenceCurve.from_statistics(
        statistics, name=f"{benchmark}:{index_kind}"
    )


def list_experiments() -> List[Tuple[str, str]]:
    """``(id, description)`` of every registered paper experiment."""
    from repro.experiments import list_experiments as registry_list

    return [
        (experiment.id, experiment.description)
        for experiment in registry_list()
    ]
